package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// call handles every call expression: type conversions, builtins, function
// literals, declassifiers, sources, sinks, module summaries, and — for
// everything else — conservative propagation of argument taint into the
// result.
func (fa *funcAnalysis) call(call *ast.CallExpr) taintVal {
	info := fa.info()

	// Type conversion T(x): taint passes through unchanged.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		var t taintVal
		for _, a := range call.Args {
			t = t.union(fa.eval(a))
		}
		return t
	}

	fun := ast.Unparen(call.Fun)

	// Builtins, including the host-visible print/println/panic sinks.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return fa.builtin(b.Name(), call)
		}
	}

	// Immediately invoked function literal.
	if lit, ok := fun.(*ast.FuncLit); ok {
		fa.litReturns[lit] = collectReturns(lit)
		return fa.litCallResult(lit, call.Args)
	}

	// Call through a local binding of a function literal (closure).
	if id, ok := fun.(*ast.Ident); ok {
		if obj := fa.objectOf(id); obj != nil {
			if lit, ok := fa.lits[obj]; ok {
				return fa.litCallResult(lit, call.Args)
			}
		}
	}

	fn, impls := fa.eng.cg.callee(fa.fd.pkg, call)
	argExprs := receiverAndArgs(fa.fd.pkg, call)
	if fn == nil {
		// Function value or otherwise unresolvable callee: propagate.
		var t taintVal
		for _, a := range argExprs {
			t = t.union(fa.eval(a))
		}
		return t
	}
	key := fa.eng.cg.name(fn)

	// Order-sensitive statistic sinks are checked before sources and
	// declassifiers: most of them (lrtest.NewLogRatios, stats.MAF, the
	// selection entry points) are ALSO aggregate sources or release
	// boundaries, which would otherwise swallow the unordered bit first.
	if desc, ok := fa.eng.spec.OrderSinks[key]; ok {
		for _, a := range argExprs {
			t := fa.eval(a)
			if fa.allowed("divergentfloat", a.Pos(), call.Pos()) {
				continue
			}
			if t.raw&ClassUnordered != 0 {
				fa.reportf("divergentfloat", a.Pos(),
					"order-nondeterministic value (map iteration, select race or goroutine fan-in) reaches %s; sort or merge by index first so every member computes bit-identical statistics", desc)
			}
			fa.noteOrd(t.params, desc)
		}
	}

	// Ordering barriers re-establish a canonical order: an in-place sort
	// scrubs the unordered bit from its argument, and any barrier's result
	// is order-deterministic by declaration. The scrub wraps the normal call
	// handling below, so a barrier that is also a source, sink or module
	// function keeps its other semantics.
	if fa.eng.orderBarrier(fn, key) {
		res := fa.callResolved(call, fn, impls, key, argExprs)
		if inPlaceSorts[key] && len(argExprs) > 0 {
			fa.clearUnordered(argExprs[0])
		}
		res.raw &^= ClassUnordered
		return res
	}
	return fa.callResolved(call, fn, impls, key, argExprs)
}

// callResolved handles a call whose callee resolved to fn: declassifiers,
// sources, sinks, format functions, and module summaries.
func (fa *funcAnalysis) callResolved(call *ast.CallExpr, fn *types.Func, impls []*types.Func, key string, argExprs []ast.Expr) taintVal {
	// Declassifiers override everything: sealing demotes raw taint to
	// sealed, release/aggregation boundaries drop it, unsealing restores it.
	if mode, ok := fa.eng.declassifierFor(fn, key); ok {
		var t taintVal
		for _, a := range argExprs {
			t = t.union(fa.eval(a))
		}
		switch mode {
		case DeclassSeal:
			return t.sealTV()
		case DeclassUnseal:
			return taintVal{raw: t.raw | t.sealed, params: t.params | t.sealedParams}
		default: // DeclassRelease
			return taintVal{}
		}
	}

	// Sources and aggregators: the result class is declared, regardless of
	// argument taint (AlleleCounts reads a per-individual matrix but yields
	// an aggregate vector).
	if cls, ok := fa.eng.sourceFor(fn, key); ok {
		for _, a := range argExprs {
			fa.eval(a)
		}
		return taintVal{raw: cls}
	}

	if sk, ok := fa.eng.spec.Sinks[key]; ok {
		if t, handled := fa.sinkCall(call, sk, argExprs); handled {
			return t
		}
	}

	if fa.eng.spec.FormatFuncs[key] {
		// String formatters propagate taint into their result and are
		// logleak sites for secret-typed arguments.
		var t taintVal
		for _, a := range argExprs {
			t = t.union(fa.eval(a))
			fa.checkTypeLeak("logleak", a, key)
		}
		return t
	}

	// Module function or interface with in-module implementations: apply
	// the (current) summaries.
	sums := fa.eng.summariesFor(fn, impls)
	if len(sums) == 0 {
		var t taintVal
		for _, a := range argExprs {
			t = t.union(fa.eval(a))
		}
		return t
	}
	args := fa.argTaints(argExprs)
	var out taintVal
	for _, ns := range sums {
		out = out.union(fa.applySummary(ns, call, argExprs, args))
	}
	return out
}

// applySummary instantiates a callee summary at this call site: results,
// transitive sink/checkpoint reachability, and field writes.
func (fa *funcAnalysis) applySummary(ns *namedSummary, call *ast.CallExpr, argExprs []ast.Expr, args []taintVal) taintVal {
	s := ns.sum
	var out taintVal
	for _, r := range s.results {
		out = out.union(instantiate(r, args, s.nparams))
	}
	for i := 0; i < s.nparams && i < 64; i++ {
		bit := uint64(1) << i
		if s.obvParams&bit != 0 && !fa.obvBarrier {
			pos := fa.argPos(call, argExprs, s.nparams, i)
			if !fa.allowed("obliviousflow", pos, call.Pos()) {
				t := paramTaint(args, s.nparams, i)
				via := s.obvVia[i]
				if fa.obvScope && t.raw&ClassIndividual != 0 {
					fa.reportf("obliviousflow", pos,
						"per-individual data %s via %s; oblivious code must not hand secrets to data-dependent callees", via, shortFuncName(ns.name))
				}
				fa.noteObv(t.params, via+" via "+shortFuncName(ns.name))
			}
		}
		if s.ordParams&bit != 0 {
			pos := fa.argPos(call, argExprs, s.nparams, i)
			if !fa.allowed("divergentfloat", pos, call.Pos()) {
				t := paramTaint(args, s.nparams, i)
				via := s.ordVia[i]
				if t.raw&ClassUnordered != 0 {
					fa.reportf("divergentfloat", pos,
						"order-nondeterministic value reaches %s via %s; sort or merge by index first so every member computes bit-identical statistics", via, shortFuncName(ns.name))
				}
				fa.noteOrd(t.params, via+" via "+shortFuncName(ns.name))
			}
		}
		if s.sinkParams&bit != 0 {
			pos := fa.argPos(call, argExprs, s.nparams, i)
			if fa.allowed("secretflow", pos, call.Pos()) {
				continue
			}
			t := paramTaint(args, s.nparams, i)
			via := s.sinkVia[i]
			if t.raw&classSecret != 0 {
				fa.reportf("secretflow", pos,
					"%s secret data reaches %s via %s", t.raw&classSecret, via, shortFuncName(ns.name))
			}
			fa.noteSink(t.params, via+" via "+shortFuncName(ns.name))
		}
		if s.ckptParams&bit != 0 {
			pos := fa.argPos(call, argExprs, s.nparams, i)
			if fa.allowed("checkpointplain", pos, call.Pos()) {
				continue
			}
			t := paramTaint(args, s.nparams, i)
			via := s.ckptVia[i]
			if (t.raw|t.sealed)&ClassIndividual != 0 {
				fa.reportf("checkpointplain", pos,
					"per-individual data reaches %s via %s; checkpoints must hold post-aggregation data only", via, shortFuncName(ns.name))
			}
			fa.noteCkpt(t.params|t.sealedParams, via+" via "+shortFuncName(ns.name))
		}
	}
	for f, v := range s.fieldWrites {
		fa.eng.writeField(f, instantiate(v, args, s.nparams), fa)
	}
	return out
}

// sinkCall processes a call whose callee is in the sink table. It returns
// handled=false when sink detection is switched off for the calling package,
// in which case the caller falls back to normal propagation.
func (fa *funcAnalysis) sinkCall(call *ast.CallExpr, sk SinkSpec, argExprs []ast.Expr) (taintVal, bool) {
	pkgPath := fa.fd.pkg.Path
	if sk.Checkpoint {
		if fa.eng.noCkptSink[pkgPath] {
			return taintVal{}, false
		}
	} else if fa.eng.noEgressSink[pkgPath] {
		return taintVal{}, false
	}

	// Secure-channel exemption: a send whose connection argument is
	// statically the AEAD channel type is proof the payload leaves sealed.
	if !sk.Checkpoint && sk.ConnArg >= 0 && sk.ConnArg < len(argExprs) {
		if tv, ok := fa.info().Types[argExprs[sk.ConnArg]]; ok && tv.Type != nil &&
			types.TypeString(tv.Type, nil) == fa.eng.spec.ExemptConnType {
			for _, a := range argExprs {
				fa.eval(a)
			}
			return taintVal{}, true
		}
	}

	for i, a := range argExprs {
		if i < sk.ArgStart || i == sk.ConnArg {
			fa.eval(a)
			continue
		}
		t := fa.eval(a)
		if sk.Checkpoint {
			if fa.allowed("checkpointplain", a.Pos(), call.Pos()) {
				continue
			}
			if (t.raw|t.sealed)&ClassIndividual != 0 {
				fa.reportf("checkpointplain", a.Pos(),
					"per-individual data persisted through %s; sealing does not help — checkpoints outlive the enclave", sk.Kind)
			} else {
				fa.checkTypeLeak("checkpointplain", a, sk.Kind)
			}
			fa.noteCkpt(t.params|t.sealedParams, sk.Kind)
			continue
		}
		if fa.allowed("secretflow", a.Pos(), call.Pos()) {
			continue
		}
		if t.raw&classSecret != 0 {
			fa.reportf("secretflow", a.Pos(), "%s secret data reaches %s in plaintext", t.raw&classSecret, sk.Kind)
		} else if sk.LogLeak {
			fa.checkTypeLeak("logleak", a, sk.Kind)
		} else {
			fa.checkTypeLeak("secretflow", a, sk.Kind)
		}
		fa.noteSink(t.params, sk.Kind)
	}
	return taintVal{}, true
}

// checkTypeLeak reports when an expression's static type can hold secret
// data, independently of value flow: passing a *genome.Matrix (or a struct
// containing one) to a formatter leaks genotypes via %v even if this
// particular value never saw a tracked source.
func (fa *funcAnalysis) checkTypeLeak(analyzer string, e ast.Expr, where string) {
	tv, ok := fa.info().Types[e]
	if !ok || tv.Type == nil {
		return
	}
	cls := fa.eng.typeSecretClass(tv.Type)
	if analyzer == "checkpointplain" {
		cls &= ClassIndividual
	}
	if cls == 0 {
		return
	}
	fa.reportf(analyzer, e.Pos(), "value of type %s can carry %s secret data and reaches %s",
		types.TypeString(tv.Type, relativeTo(fa.fd.pkg)), cls, where)
}

func relativeTo(pkg *Package) types.Qualifier {
	if pkg.Types == nil {
		return nil
	}
	return types.RelativeTo(pkg.Types)
}

// noteSink records that parameters of the function under analysis reach a
// plaintext-egress sink (transitively), with a description for call sites.
func (fa *funcAnalysis) noteSink(params uint64, via string) {
	if params == 0 {
		return
	}
	if fa.sum.sinkParams|params != fa.sum.sinkParams {
		fa.sum.sinkParams |= params
		fa.changed = true
	}
	if fa.sum.sinkVia == nil {
		fa.sum.sinkVia = make(map[int]string)
	}
	for i := 0; i < 64; i++ {
		if params&(1<<i) != 0 {
			if _, ok := fa.sum.sinkVia[i]; !ok {
				fa.sum.sinkVia[i] = via
			}
		}
	}
}

// noteObv records that parameters of the function under analysis steer
// control flow or memory addressing somewhere beneath it. Barrier functions
// never record: their body is the sanctioned primitive.
func (fa *funcAnalysis) noteObv(params uint64, via string) {
	if params == 0 || fa.obvBarrier {
		return
	}
	if fa.sum.obvParams|params != fa.sum.obvParams {
		fa.sum.obvParams |= params
		fa.changed = true
	}
	if fa.sum.obvVia == nil {
		fa.sum.obvVia = make(map[int]string)
	}
	for i := 0; i < 64; i++ {
		if params&(1<<i) != 0 {
			if _, ok := fa.sum.obvVia[i]; !ok {
				fa.sum.obvVia[i] = via
			}
		}
	}
}

// noteOrd records that parameters reach an order-sensitive statistic sink.
func (fa *funcAnalysis) noteOrd(params uint64, via string) {
	if params == 0 {
		return
	}
	if fa.sum.ordParams|params != fa.sum.ordParams {
		fa.sum.ordParams |= params
		fa.changed = true
	}
	if fa.sum.ordVia == nil {
		fa.sum.ordVia = make(map[int]string)
	}
	for i := 0; i < 64; i++ {
		if params&(1<<i) != 0 {
			if _, ok := fa.sum.ordVia[i]; !ok {
				fa.sum.ordVia[i] = via
			}
		}
	}
}

// inPlaceSorts lists the ordering barriers that sort their first argument in
// place: the canonical collect-keys/sort/indexed-read idiom mutates the
// slice, so the barrier must scrub the unordered bit from the argument
// itself, not only from the (empty) result.
var inPlaceSorts = map[string]bool{
	"sort.Float64s":         true,
	"sort.Ints":             true,
	"sort.Strings":          true,
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

// clearUnordered strong-updates the root object behind an in-place sort
// argument, dropping the unordered class. The walk is AST-ordered, so the
// final state of a collect-sort-read sequence is deterministic; summaries
// stay union-monotone because parameter bits are untouched.
func (fa *funcAnalysis) clearUnordered(arg ast.Expr) {
	switch x := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj := fa.objectOf(x)
		if obj == nil {
			return
		}
		t := fa.obj[obj]
		if t.raw&ClassUnordered != 0 {
			t.raw &^= ClassUnordered
			fa.obj[obj] = t
		}
	case *ast.CallExpr:
		// sort.Sort(sort.Float64Slice(keys)): unwrap the conversion.
		if tv, ok := fa.info().Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			fa.clearUnordered(x.Args[0])
		}
	}
}

func (fa *funcAnalysis) noteCkpt(params uint64, via string) {
	if params == 0 {
		return
	}
	if fa.sum.ckptParams|params != fa.sum.ckptParams {
		fa.sum.ckptParams |= params
		fa.changed = true
	}
	if fa.sum.ckptVia == nil {
		fa.sum.ckptVia = make(map[int]string)
	}
	for i := 0; i < 64; i++ {
		if params&(1<<i) != 0 {
			if _, ok := fa.sum.ckptVia[i]; !ok {
				fa.sum.ckptVia[i] = via
			}
		}
	}
}

// argPos finds the call-site position of the argument feeding callee
// parameter i, falling back to the call position.
func (fa *funcAnalysis) argPos(call *ast.CallExpr, argExprs []ast.Expr, nparams, i int) token.Pos {
	for j, a := range argExprs {
		idx := j
		if idx >= nparams {
			idx = nparams - 1
		}
		if idx == i {
			return a.Pos()
		}
	}
	return call.Pos()
}

// builtin models the language builtins that move or expose taint.
func (fa *funcAnalysis) builtin(name string, call *ast.CallExpr) taintVal {
	switch name {
	case "append":
		var t taintVal
		for _, a := range call.Args {
			t = t.union(fa.eval(a))
		}
		return t
	case "copy":
		if len(call.Args) == 2 {
			src := fa.eval(call.Args[1])
			fa.assignLHS(call.Args[0], src)
		}
		return taintVal{}
	case "print", "println":
		for _, a := range call.Args {
			t := fa.eval(a)
			if fa.allowed("secretflow", a.Pos(), call.Pos()) {
				continue
			}
			if t.raw&classSecret != 0 {
				fa.reportf("secretflow", a.Pos(), "%s secret data reaches built-in %s (host-visible output)", t.raw&classSecret, name)
			} else {
				fa.checkTypeLeak("logleak", a, "built-in "+name)
			}
			fa.noteSink(t.params, "built-in "+name)
		}
		return taintVal{}
	case "panic":
		for _, a := range call.Args {
			t := fa.eval(a)
			// Whether a panic fires at all is control flow: secret-decided
			// aborts are visible to the host adversary.
			fa.checkObliviousTaint(a, t, "feeds a panic")
			if fa.allowed("secretflow", a.Pos(), call.Pos()) {
				continue
			}
			if t.raw&classSecret != 0 {
				fa.reportf("secretflow", a.Pos(), "%s secret data reaches a panic message (host-visible)", t.raw&classSecret)
			} else {
				fa.checkTypeLeak("logleak", a, "a panic message")
			}
			fa.noteSink(t.params, "a panic message")
		}
		return taintVal{}
	case "make":
		// The size arguments become observable allocation behavior.
		for i, a := range call.Args {
			t := fa.eval(a)
			if i > 0 {
				fa.checkObliviousTaint(a, t, "sizes an allocation")
			}
		}
		return taintVal{}
	case "delete":
		// Deleting by key is a map access at a data-dependent address.
		for i, a := range call.Args {
			t := fa.eval(a)
			if i == 1 {
				fa.checkObliviousTaint(a, t, "indexes memory")
			}
		}
		return taintVal{}
	case "len", "cap", "new", "clear", "close":
		for _, a := range call.Args {
			fa.eval(a)
		}
		return taintVal{}
	default: // min, max, complex, real, imag, ...
		var t taintVal
		for _, a := range call.Args {
			t = t.union(fa.eval(a))
		}
		return t
	}
}

// shortFuncName trims the package path from a table key for messages:
// "(*gendpr/internal/core.assessment).validateCounts" -> "(*core.assessment).validateCounts".
func shortFuncName(full string) string {
	out := make([]byte, 0, len(full))
	seg := 0
	for i := 0; i < len(full); i++ {
		switch full[i] {
		case '/':
			out = out[:seg]
		case '(', '*', ' ':
			out = append(out, full[i])
			seg = len(out)
		default:
			out = append(out, full[i])
		}
	}
	return string(out)
}
