package analysis

import (
	"go/ast"
	"go/types"
)

// NewGoroLeak returns the analyzer enforcing the service-liveness invariant
// on goroutine spawn sites: every `go` statement in the daemon layers must
// carry a provable termination signal, because the always-on server drains
// by waiting for its goroutines and a stranded one wedges shutdown (and, at
// the paper's availability targets, accumulates across requests until the
// leader dies of scheduler pressure). A spawn is accepted when the spawned
// body
//
//   - calls Done on a sync.WaitGroup (joinable: someone Waits for it),
//   - closes or sends on a channel captured from the spawner's scope (a
//     completion signal the spawner can consume), or
//   - loops only in ways that terminate: ranging over a channel some
//     function in the package closes, or checking ctx.Done()/ctx.Err()
//     on a path that provably exits the loop — verified on the CFG, so a
//     bare `break` inside a select (which binds to the select, not the
//     loop) is correctly rejected.
//
// Anything else — including a straight-line body whose calls may block
// forever, the shape behind real Serve-goroutine leaks — is a finding.
func NewGoroLeak(scopes []Scope) *Analyzer {
	a := &Analyzer{
		Name:   "goroleak",
		Doc:    "every spawned goroutine needs a provable termination signal: a WaitGroup.Done, a completion channel, or a cancellable loop",
		Scopes: scopes,
	}
	a.Run = func(p *Pass) {
		// Named spawn targets (`go s.worker()`) are resolved against the
		// whole package, and close() provenance for ranged channels is
		// package-wide too: the spawner and closer are rarely in one file.
		decls := packageFuncDecls(p.Pkg)
		closed := closedChannelObjects(p.Pkg)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(p, gs, decls, closed)
				return true
			})
		}
	}
	return a
}

// packageFuncDecls indexes every function/method body in the package by its
// types.Func, so `go s.worker()` can be checked at the spawn site.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	if pkg.Info == nil {
		return out
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// closedChannelObjects collects the types.Object of every expression the
// package passes to the close builtin: variables, struct fields (the object
// is the field, so `close(s.queue)` in one method licenses `range s.queue`
// in another), and globals.
func closedChannelObjects(pkg *Package) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if pkg.Info == nil {
		return out
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "close" {
				return true
			}
			if obj := exprObject(pkg, call.Args[0]); obj != nil {
				out[obj] = true
			}
			return true
		})
	}
	return out
}

// exprObject resolves an identifier or field selector to its types.Object.
func exprObject(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}

func checkGoStmt(p *Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl, closed map[types.Object]bool) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		// Named target: analyze the callee's body at the spawn site.
		fn, _ := calleeFunc(p.Pkg, gs.Call)
		if fn != nil {
			if fd := decls[fn]; fd != nil {
				body = fd.Body
			}
		}
	}
	if body == nil {
		p.Reportf(gs.Pos(), "goroutine body cannot be resolved for termination analysis: spawn a function declared in this package or an inline literal so drain is provable")
		return
	}
	if hasWaitGroupDone(p, body) || signalsCapturedChannel(p, body) {
		return
	}

	loops := unboundedLoops(p, body)
	if len(loops) == 0 {
		p.Reportf(gs.Pos(), "goroutine is not joinable and has no termination signal: its calls may block forever with nothing to reap it; add a WaitGroup.Done, close a completion channel, or loop on a cancellable context")
		return
	}
	cfg := BuildCFG(body)
	for _, lp := range loops {
		checkUnboundedLoop(p, cfg, lp, closed)
	}
}

// calleeFunc resolves a call's static callee without consulting the module
// call graph (goroleak is package-local).
func calleeFunc(pkg *Package, call *ast.CallExpr) (*types.Func, bool) {
	if pkg.Info == nil {
		return nil, false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := pkg.Info.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			return fn, ok
		}
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

// hasWaitGroupDone reports a Done() call on a sync.WaitGroup anywhere in the
// body except inside nested `go` statements (a grandchild's Done does not
// join this goroutine).
func hasWaitGroupDone(p *Pass, body *ast.BlockStmt) bool {
	found := false
	inspectSkippingNestedGo(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return
		}
		if isWaitGroup(p, sel) {
			found = true
		}
	})
	return found
}

// signalsCapturedChannel reports a close() of, or send on, a channel whose
// declaration lives outside the body — a completion signal visible to the
// spawner.
func signalsCapturedChannel(p *Pass, body *ast.BlockStmt) bool {
	if p.Pkg.Info == nil {
		return false
	}
	found := false
	inspectSkippingNestedGo(body, func(n ast.Node) {
		var target ast.Expr
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				target = n.Args[0]
			}
		case *ast.SendStmt:
			target = n.Chan
		}
		if target == nil {
			return
		}
		obj := exprObject(p.Pkg, target)
		if obj == nil {
			return
		}
		// Struct fields and globals are never body-local; locals are only a
		// signal when declared before the goroutine body starts.
		if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
			found = true
		}
	})
	return found
}

// inspectSkippingNestedGo walks the body but not into the bodies of nested
// go statements: their signals belong to their own spawn-site analysis.
func inspectSkippingNestedGo(body *ast.BlockStmt, visit func(ast.Node)) {
	var skip ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n == skip {
			return false
		}
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				skip = lit.Body
			}
		}
		visit(n)
		return true
	})
}

// unboundedLoop is a loop with no structural bound: `for { ... }` or a range
// over a channel.
type unboundedLoop struct {
	node     ast.Stmt
	body     *ast.BlockStmt
	rangedCh ast.Expr // non-nil for range-over-channel
}

func unboundedLoops(p *Pass, body *ast.BlockStmt) []unboundedLoop {
	var out []unboundedLoop
	inspectSkippingNestedGo(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.ForStmt:
			if s.Cond == nil {
				out = append(out, unboundedLoop{node: s, body: s.Body})
			}
		case *ast.RangeStmt:
			if p.Pkg.Info == nil {
				return
			}
			if tv, ok := p.Pkg.Info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					out = append(out, unboundedLoop{node: s, body: s.Body, rangedCh: s.X})
				}
			}
		}
	})
	return out
}

// checkUnboundedLoop accepts a range-over-channel when the package closes
// that channel, and a `for {}` when it checks ctx cancellation on a path the
// CFG shows escaping the loop. A nested `for {}` that exits still lands in
// the enclosing loop, so the escape check asks for reachability of the
// function exit — the only destination that ends the goroutine.
func checkUnboundedLoop(p *Pass, cfg *CFG, lp unboundedLoop, closed map[types.Object]bool) {
	if lp.rangedCh != nil {
		obj := exprObject(p.Pkg, lp.rangedCh)
		if obj != nil && closed[obj] {
			return
		}
		p.Reportf(lp.node.Pos(), "goroutine ranges over a channel no function in this package closes: the loop can never terminate and drain will strand the goroutine")
		return
	}
	ctxNodes := contextCancellationChecks(p, lp.body)
	if len(ctxNodes) == 0 {
		p.Reportf(lp.node.Pos(), "unbounded loop in goroutine has no termination signal: check ctx.Done() or ctx.Err() in the loop (or range over a channel the spawner closes)")
		return
	}
	for _, cn := range ctxNodes {
		blk := blockOfNode(cfg, cn)
		if blk != nil && cfg.Reachable(blk, cfg.Exit) {
			return
		}
	}
	p.Reportf(lp.node.Pos(), "the ctx cancellation check cannot exit the loop (a bare break in a select binds to the select, not the loop): use a labeled break or return")
}

// contextCancellationChecks finds calls to Done() or Err() on a
// context.Context inside the loop body.
func contextCancellationChecks(p *Pass, body *ast.BlockStmt) []ast.Node {
	var out []ast.Node
	inspectSkippingNestedGo(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
			return
		}
		if t := receiverType(p, sel); t != nil && isContextInterface(t) {
			out = append(out, call)
		}
	})
	return out
}

// blockOfNode locates the CFG block whose Nodes contain (a subtree holding)
// the given node.
func blockOfNode(cfg *CFG, target ast.Node) *Block {
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if m == target {
					found = true
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	return nil
}

// isContextInterface matches context.Context (or a named interface
// embedding it, resolved structurally by method presence).
func isContextInterface(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	var hasDone, hasErr bool
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Done":
			hasDone = true
		case "Err":
			hasErr = true
		}
	}
	return hasDone && hasErr
}
