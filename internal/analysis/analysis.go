// Package analysis is GenDPR's project-invariant static-analysis framework.
// The Go compiler cannot see the invariants the paper's threat model rests
// on: privacy-critical randomness must be cryptographic, mutexes must not be
// held across blocking transport operations, statistical cutoffs must not
// use exact float equality, wire/transport errors must not be dropped, and
// WaitGroup choreography must be race-free. Each invariant is encoded as an
// Analyzer; cmd/gendpr-lint runs the default suite over the module and CI
// gates on a clean report (see STATIC_ANALYSIS.md).
//
// The framework is stdlib-only (go/ast, go/parser, go/types): analyzers see
// parsed files plus best-effort type information and report position-tagged
// diagnostics. Individual findings can be acknowledged in source with a
// justified directive on the flagged line or the line above:
//
//	//gendpr:allow(analyzer1,analyzer2): reason the invariant is upheld
//
// A directive without a reason is itself a diagnostic — suppressions must
// carry their justification so reviewers can audit them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Scope restricts an analyzer to part of the module. The zero Scope matches
// nothing; an analyzer with an empty Scopes slice runs everywhere.
type Scope struct {
	// PathPrefix matches a package import path exactly or as a
	// "/"-terminated prefix (so "a/b" covers "a/b" and "a/b/c", not "a/bc").
	PathPrefix string
	// Files, when non-empty, restricts the scope to these base file names
	// within matching packages.
	Files []string
}

func (s Scope) matches(pkgPath, base string) bool {
	if pkgPath != s.PathPrefix && !strings.HasPrefix(pkgPath, s.PathPrefix+"/") {
		return false
	}
	if len(s.Files) == 0 {
		return true
	}
	for _, f := range s.Files {
		if f == base {
			return true
		}
	}
	return false
}

// Analyzer is one project invariant: a named check over a package's files.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Scopes restricts where the analyzer applies; empty means the whole
	// module.
	Scopes []Scope
	// ModuleGlobal marks analyzers whose findings for one package can change
	// when any other package changes (the taint suite and lockorder build
	// module-wide engines). The incremental cache keys their results on the
	// whole module's content, not just the package's dependency cone.
	ModuleGlobal bool
	// Run inspects the files the Pass exposes and reports findings.
	Run func(*Pass)
}

// Pass is one (analyzer, package) execution. Files holds only the files in
// the analyzer's scope; Pkg carries the full package, including best-effort
// type information (nil entries when type checking was incomplete —
// analyzers must degrade gracefully).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Mod is the module the package belongs to; module-global analyzers
	// (the taint suite) key shared state off it.
	Mod   *Module
	Pkg   *Package
	Files []*ast.File

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirective matches "//gendpr:allow(name1,name2): reason";
// allowPrefix catches every comment that tries to be a directive (including
// a bare "//gendpr:allow") so malformed ones are reported, never ignored.
var (
	allowDirective = regexp.MustCompile(`^//gendpr:allow\(([^)]*)\)(.*)$`)
	allowPrefix    = regexp.MustCompile(`^//gendpr:allow\b`)
)

// suppressions maps file -> line -> analyzer names allowed on that line.
type suppressions map[string]map[int][]string

// collectSuppressions scans a file's comments for allow directives. A
// malformed directive (no reason after the colon) is reported as a
// diagnostic under the pseudo-analyzer "directive" so it cannot silently
// disable a check.
func collectSuppressions(fset *token.FileSet, files []*ast.File, sup suppressions, diags *[]Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !allowPrefix.MatchString(c.Text) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowDirective.FindStringSubmatch(c.Text)
				if m == nil {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "gendpr:allow directive needs analyzer names and a justification: //gendpr:allow(name): reason",
					})
					continue
				}
				rest := strings.TrimSpace(m[2])
				if !strings.HasPrefix(rest, ":") || strings.TrimSpace(rest[1:]) == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "gendpr:allow directive needs a justification: //gendpr:allow(name): reason",
					})
					continue
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					sup[pos.Filename] = byLine
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name != "" {
						byLine[pos.Line] = append(byLine[pos.Line], name)
					}
				}
			}
		}
	}
}

func (s suppressions) allows(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// AnalyzerStats records one analyzer's aggregate execution over the module:
// total wall time across packages and how many findings survived
// suppression. The first taint analyzer to run pays the one-time engine
// construction (call graph + fixpoint), which its Duration reflects.
type AnalyzerStats struct {
	Name     string
	Duration time.Duration
	Findings int
}

// Run applies every analyzer to every package in the module and returns the
// unsuppressed findings sorted by position.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunWithStats(mod, analyzers)
	return diags
}

// RunWithStats is Run plus per-analyzer timing, for -v diagnostics and CI
// artifacts. Stats are returned in the analyzers' order.
//
// Packages fan out across a GOMAXPROCS-bounded pool; within one package the
// analyzers run serially. Each task reports into its own diagnostic slice
// (merged in package order, then position-sorted, so the output is identical
// to a serial run). Analyzer state shared across packages — the taint
// registry's lazily built engine — is guarded by its own mutex; an
// analyzer's Duration therefore includes any time spent blocked on that
// one-time construction, same as the serial accounting charged it to the
// first analyzer to run.
func RunWithStats(mod *Module, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerStats) {
	var diags []Diagnostic
	sup := make(suppressions)
	for _, pkg := range mod.Packages {
		collectSuppressions(pkg.Fset, pkg.Files, sup, &diags)
	}
	stats := make([]AnalyzerStats, len(analyzers))
	for i, a := range analyzers {
		stats[i].Name = a.Name
	}

	type pkgResult struct {
		diags []Diagnostic
		durs  []time.Duration
	}
	results := make([]pkgResult, len(mod.Packages))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(mod.Packages) {
		workers = len(mod.Packages)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				pkg := mod.Packages[j]
				res := &results[j]
				res.durs = make([]time.Duration, len(analyzers))
				for i, a := range analyzers {
					files := scopedFiles(a, pkg)
					if len(files) == 0 {
						continue
					}
					pass := &Pass{Analyzer: a, Fset: pkg.Fset, Mod: mod, Pkg: pkg, Files: files, diags: &res.diags}
					start := time.Now()
					a.Run(pass)
					res.durs[i] += time.Since(start)
				}
			}
		}()
	}
	for j := range mod.Packages {
		idx <- j
	}
	close(idx)
	wg.Wait()
	for j := range results {
		diags = append(diags, results[j].diags...)
		for i := range analyzers {
			stats[i].Duration += results[j].durs[i]
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if sup.allows(d) {
			continue
		}
		kept = append(kept, d)
		for i := range stats {
			if stats[i].Name == d.Analyzer {
				stats[i].Findings++
				break
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, stats
}

func scopedFiles(a *Analyzer, pkg *Package) []*ast.File {
	if len(a.Scopes) == 0 {
		return pkg.Files
	}
	var out []*ast.File
	for _, f := range pkg.Files {
		base := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		for _, s := range a.Scopes {
			if s.matches(pkg.Path, base) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// DefaultAnalyzers returns the project invariant suite with GenDPR's policy
// baked in: which packages are privacy-critical, where float cutoffs live,
// and which call names carry must-check errors. STATIC_ANALYSIS.md documents
// the mapping from each analyzer to the paper's threat model.
func DefaultAnalyzers() []*Analyzer {
	privacyCritical := []Scope{
		{PathPrefix: "gendpr/internal/oram"},
		{PathPrefix: "gendpr/internal/oblivious"},
		{PathPrefix: "gendpr/internal/paillier"},
		{PathPrefix: "gendpr/internal/secshare"},
		{PathPrefix: "gendpr/internal/enclave"},
		{PathPrefix: "gendpr/internal/crand"},
		{PathPrefix: "gendpr/internal/core", Files: []string{"oblivious_member.go"}},
	}
	floatCutoffs := []Scope{
		{PathPrefix: "gendpr/internal/stats"},
		{PathPrefix: "gendpr/internal/lrtest"},
		{PathPrefix: "gendpr/internal/core"},
	}
	taint := NewTaintRegistry(DefaultTaintSpec())
	return []*Analyzer{
		NewCryptoRand(privacyCritical),
		NewLockAcrossSend(nil),
		NewFloatEq(floatCutoffs),
		NewErrDrop(nil),
		NewWGMisuse(nil),
		NewNakedRecv([]Scope{{PathPrefix: "gendpr/internal/federation"}}),
		NewCtxDeadline([]Scope{
			{PathPrefix: "gendpr/internal/federation"},
			{PathPrefix: "gendpr/internal/service"},
			{PathPrefix: "gendpr/internal/checkpoint"},
			{PathPrefix: "gendpr/cmd"},
		}),
		NewGoroLeak([]Scope{
			{PathPrefix: "gendpr/internal/service"},
			{PathPrefix: "gendpr/internal/federation"},
			{PathPrefix: "gendpr/internal/core"},
		}),
		NewMustRelease(nil, DefaultReleasePairs()),
		NewLockOrder(nil),
		NewSecretFlow(taint),
		NewLogLeak(taint),
		NewCheckpointPlain(taint),
		NewObliviousFlow(taint),
		NewDivergentFloat(taint),
	}
}
