package analysis

// cfg.go is the flow-sensitive layer of the analysis framework: an
// intraprocedural control-flow graph over one go/ast function body. The
// lifecycle analyzers (mustrelease, lockorder) and any future path-sensitive
// check walk this graph instead of re-deriving Go's control flow from syntax:
// branches, loops (including `for {}` and range loops), labeled
// break/continue, goto, switch/type-switch with fallthrough, select, and the
// two exit kinds — return and panic-shaped termination — are all edges here.
//
// Defer is deliberately *not* lowered away: a DeferStmt stays a normal node
// in the block where it executes, so a path-walking analysis sees exactly
// which defers were registered on the path it is exploring (a defer inside a
// branch only guards paths through that branch; a defer inside a loop
// registers once per iteration but runs at function exit — Block.LoopDepth
// lets analyzers flag that shape).

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of straight-line atomic nodes.
// Nodes holds simple statements (assignments, expression statements, defers,
// returns, sends, declarations) and bare expressions (branch conditions,
// switch tags, case expressions, range operands) in execution order;
// composite statements never appear — the builder lowers them to edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Branch, when non-nil, is the boolean condition this block ends on;
	// Succs[0] is then the true edge and Succs[1] the false edge. Blocks
	// ending any other way make no ordering promise about Succs.
	Branch ast.Expr

	// LoopDepth counts the enclosing loops of this block within the
	// function (0 = not inside any loop). Defer registered at LoopDepth>0
	// runs at function exit, not loop exit — the classic accumulation bug.
	LoopDepth int
}

// CFG is the control-flow graph of one function body. Entry has no
// predecessors; Exit collects every terminating edge — returns, falling off
// the end of the body, and panic-shaped calls (panic, os.Exit, log.Fatal*,
// runtime.Goexit). Deferred calls run on all Exit edges except the os.Exit
// family; analyses that care can inspect the terminating node.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// BuildCFG constructs the graph for one function body. It never fails: in
// the worst case (pathological gotos) the graph degrades to coarser blocks,
// and unreachable statements become blocks without predecessors.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.labels = make(map[string]*labelRecord)
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.jumpTo(b.cfg.Exit)
	return b.cfg
}

// branchScope is one enclosing breakable/continuable construct.
type branchScope struct {
	label   string // non-empty when the construct is labeled
	isLoop  bool   // continue only binds to loops
	breakTo *Block
	contTo  *Block // nil for switch/select
}

// labelRecord resolves gotos (possibly forward) and labeled statements.
type labelRecord struct {
	block *Block
}

type cfgBuilder struct {
	cfg       *CFG
	cur       *Block // nil when the current point is unreachable
	loopDepth int
	scopes    []*branchScope
	labels    map[string]*labelRecord

	// pendingLabel holds a label naming the next loop/switch/select, so the
	// construct can bind labeled break/continue to itself.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks), LoopDepth: b.loopDepth}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock makes blk current (creating an implicit fall-through edge from
// the previous current block when one exists).
func (b *cfgBuilder) startBlock(blk *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, blk)
	}
	b.cur = blk
}

// jumpTo ends the current block with an edge to blk and marks the point
// unreachable (the caller starts a new block for whatever follows).
func (b *cfgBuilder) jumpTo(blk *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, blk)
	}
	b.cur = nil
}

// add appends an atomic node to the current block, materializing a fresh
// unreachable block when control cannot reach here (dead code keeps its
// nodes so analyzers can still see it, just without predecessors).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if rec, ok := b.labels[name]; ok {
		return rec.block
	}
	blk := b.newBlock()
	b.labels[name] = &labelRecord{block: blk}
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findScope resolves a break/continue target: the innermost matching scope,
// or the one carrying the label.
func (b *cfgBuilder) findScope(label string, needLoop bool) *branchScope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if needLoop && !sc.isLoop {
			continue
		}
		if label == "" || sc.label == label {
			return sc
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.startBlock(lb)
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
		}
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		condBlk.Branch = s.Cond
		then := b.newBlock()
		join := b.newBlock()
		condBlk.Succs = append(condBlk.Succs, then) // true edge first
		b.cur = then
		b.stmt(s.Body)
		b.jumpTo(join)
		if s.Else != nil {
			els := b.newBlock()
			condBlk.Succs = append(condBlk.Succs, els)
			b.cur = els
			b.stmt(s.Else)
			b.jumpTo(join)
		} else {
			condBlk.Succs = append(condBlk.Succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.newBlock()
		b.startBlock(header)
		exit := b.newBlock()
		b.loopDepth++
		body := b.newBlock()
		var post *Block
		contTo := header
		if s.Post != nil {
			post = b.newBlock()
			contTo = post
		}
		if s.Cond != nil {
			header.Nodes = append(header.Nodes, s.Cond)
			header.Branch = s.Cond
			header.Succs = append(header.Succs, body, exit)
		} else {
			header.Succs = append(header.Succs, body)
		}
		b.scopes = append(b.scopes, &branchScope{label: label, isLoop: true, breakTo: exit, contTo: contTo})
		b.cur = body
		b.stmt(s.Body)
		if s.Post != nil {
			b.jumpTo(post)
			b.cur = post
			b.add(s.Post)
			b.jumpTo(header)
		} else {
			b.jumpTo(header)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.loopDepth--
		exit.LoopDepth = b.loopDepth
		b.cur = exit

	case *ast.RangeStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		// The ranged operand is evaluated once, before the loop.
		b.add(s.X)
		header := b.newBlock()
		b.startBlock(header)
		exit := b.newBlock()
		b.loopDepth++
		body := b.newBlock()
		// A range loop either yields an element (body) or is exhausted
		// (exit); ranging over a channel blocks until a value or close.
		header.Succs = append(header.Succs, body, exit)
		b.scopes = append(b.scopes, &branchScope{label: label, isLoop: true, breakTo: exit, contTo: header})
		b.cur = body
		// Key/value bindings happen per iteration at the top of the body.
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.stmt(s.Body)
		b.jumpTo(header)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.loopDepth--
		exit.LoopDepth = b.loopDepth
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, func(c *ast.CaseClause) {
			for _, e := range c.List {
				b.add(e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, func(c *ast.CaseClause) {})

	case *ast.SelectStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		header := b.cur
		if header == nil {
			header = b.newBlock()
			b.cur = header
		}
		join := b.newBlock()
		sc := &branchScope{label: label, breakTo: join}
		b.scopes = append(b.scopes, sc)
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			caseBlk := b.newBlock()
			header.Succs = append(header.Succs, caseBlk)
			b.cur = caseBlk
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jumpTo(join)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		// `select {}` blocks forever: no successors, everything after is
		// unreachable.
		if len(s.Body.List) == 0 {
			b.cur = nil
			_ = join
		} else {
			b.cur = join
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jumpTo(b.cfg.Exit)

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if sc := b.findScope(label, false); sc != nil {
				b.jumpTo(sc.breakTo)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if sc := b.findScope(label, true); sc != nil && sc.contTo != nil {
				b.jumpTo(sc.contTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jumpTo(b.labelBlock(label))
		case token.FALLTHROUGH:
			// Handled structurally by switchBody; reaching here means a
			// malformed tree — drop the edge.
			b.cur = nil
		}

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminatorCall(call) {
			b.jumpTo(b.cfg.Exit)
		}

	case *ast.GoStmt, *ast.DeferStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		if s != nil {
			b.add(s)
		}
	}
}

// switchBody lowers a (type) switch's case clauses: the header branches to
// every case (and to the join when there is no default); fallthrough chains
// a case body into the next case's body.
func (b *cfgBuilder) switchBody(label string, body *ast.BlockStmt, caseExprs func(*ast.CaseClause)) {
	header := b.cur
	if header == nil {
		header = b.newBlock()
		b.cur = header
	}
	join := b.newBlock()
	sc := &branchScope{label: label, breakTo: join}
	b.scopes = append(b.scopes, sc)

	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok {
			clauses = append(clauses, c)
		}
	}
	caseBlocks := make([]*Block, len(clauses))
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, c := range clauses {
		header.Succs = append(header.Succs, caseBlocks[i])
		if c.List == nil {
			hasDefault = true
		}
		b.cur = caseBlocks[i]
		caseExprs(c)
		// A trailing fallthrough chains into the next case's body.
		stmts := c.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts = stmts[:n-1]
				fallsThrough = true
			}
		}
		b.stmtList(stmts)
		if fallsThrough && i+1 < len(caseBlocks) {
			b.jumpTo(caseBlocks[i+1])
		} else {
			b.jumpTo(join)
		}
	}
	if !hasDefault {
		header.Succs = append(header.Succs, join)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = join
}

// isTerminatorCall reports calls that never return: the panic builtin and
// the well-known process/goroutine terminators. The match is syntactic — a
// shadowed `panic` or a local package named `os` would confuse it, shapes
// this codebase's style forbids anyway.
func isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// Reachable reports whether `to` is reachable from `from` over the graph's
// edges (inclusive of from == to).
func (c *CFG) Reachable(from, to *Block) bool {
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{from}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == to {
			return true
		}
		if seen[blk.Index] {
			continue
		}
		seen[blk.Index] = true
		stack = append(stack, blk.Succs...)
	}
	return false
}
