package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses src as a file, finds the function named fn, and
// builds its CFG.
func buildTestCFG(t *testing.T, src, fn string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn && fd.Body != nil {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil
}

// blockContaining returns the block holding a node for which pred is true.
func blockContaining(c *CFG, pred func(ast.Node) bool) *Block {
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if pred(n) {
				return blk
			}
		}
	}
	return nil
}

func isCallNamed(n ast.Node, name string) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == name
}

func TestCFGIfElseJoin(t *testing.T) {
	c := buildTestCFG(t, `package p
func a() bool
func f(x bool) {
	if x {
		a()
	} else {
		a()
	}
	a()
}`, "f")
	cond := blockContaining(c, func(n ast.Node) bool {
		_, ok := n.(*ast.Ident)
		return ok
	})
	if cond == nil || cond.Branch == nil {
		t.Fatalf("condition block missing or Branch unset")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("if condition should have 2 successors, got %d", len(cond.Succs))
	}
	// Both arms must reach Exit through the join.
	for i, succ := range cond.Succs {
		if !c.Reachable(succ, c.Exit) {
			t.Errorf("arm %d cannot reach exit", i)
		}
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	c := buildTestCFG(t, `package p
func open() int
func f(n int) {
	defer open()
	for i := 0; i < n; i++ {
		defer open()
	}
}`, "f")
	var depths []int
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				depths = append(depths, blk.LoopDepth)
			}
		}
	}
	if len(depths) != 2 {
		t.Fatalf("expected 2 defer nodes, got %d", len(depths))
	}
	var sawTop, sawLoop bool
	for _, d := range depths {
		switch d {
		case 0:
			sawTop = true
		default:
			sawLoop = true
		}
	}
	if !sawTop || !sawLoop {
		t.Errorf("expected one defer at depth 0 and one at depth>0, got %v", depths)
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	c := buildTestCFG(t, `package p
func inner()
func after()
func f(n int) {
	for i := 0; i < n; i++ {
		inner()
	}
	after()
}`, "f")
	body := blockContaining(c, func(n ast.Node) bool { return isCallNamed(n, "inner") })
	if body == nil {
		t.Fatal("loop body block not found")
	}
	// The body must be able to reach itself (back edge through post+header).
	reachesSelf := false
	for _, s := range body.Succs {
		if c.Reachable(s, body) {
			reachesSelf = true
		}
	}
	if !reachesSelf {
		t.Error("loop body has no back edge to itself")
	}
	if body.LoopDepth != 1 {
		t.Errorf("loop body LoopDepth = %d, want 1", body.LoopDepth)
	}
}

func TestCFGInfiniteLoopNoExit(t *testing.T) {
	c := buildTestCFG(t, `package p
func work()
func f() {
	for {
		work()
	}
}`, "f")
	if c.Reachable(c.Entry, c.Exit) {
		t.Error("for{} without break should not reach exit")
	}
}

func TestCFGLabeledBreakOutOfNestedSelect(t *testing.T) {
	c := buildTestCFG(t, `package p
func f(done chan struct{}, ch chan int) {
	var sink int
loop:
	for {
		select {
		case <-done:
			break loop
		case v := <-ch:
			sink = v
		}
	}
	_ = sink
}`, "f")
	// Labeled break must escape the loop: entry reaches exit.
	if !c.Reachable(c.Entry, c.Exit) {
		t.Error("break loop from inside select should reach function exit")
	}
	// The <-ch case must loop back (reach itself) but the break-loop case
	// block must not re-reach the select header.
	assignBlk := blockContaining(c, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == "sink"
	})
	if assignBlk == nil {
		t.Fatal("select case body block not found")
	}
	back := false
	for _, s := range assignBlk.Succs {
		if c.Reachable(s, assignBlk) {
			back = true
		}
	}
	if !back {
		t.Error("non-breaking select case should loop back")
	}
}

func TestCFGBareBreakInSelectStaysInLoop(t *testing.T) {
	// A bare break inside select binds to the select, not the loop — the
	// loop never terminates, so exit is unreachable.
	c := buildTestCFG(t, `package p
func f(done chan struct{}) {
	for {
		select {
		case <-done:
			break
		}
	}
}`, "f")
	if c.Reachable(c.Entry, c.Exit) {
		t.Error("bare break in select must not escape the enclosing for{}")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	c := buildTestCFG(t, `package p
func work()
func f(x bool) {
	if x {
		panic("boom")
	}
	work()
}`, "f")
	panicBlk := blockContaining(c, func(n ast.Node) bool { return isCallNamed(n, "panic") })
	if panicBlk == nil {
		t.Fatal("panic block not found")
	}
	// panic's only successor is exit; it must not fall through to work().
	workBlk := blockContaining(c, func(n ast.Node) bool { return isCallNamed(n, "work") })
	if workBlk == nil {
		t.Fatal("work block not found")
	}
	for _, s := range panicBlk.Succs {
		if c.Reachable(s, workBlk) {
			t.Error("panic must not fall through to subsequent statements")
		}
	}
	if !c.Reachable(c.Entry, workBlk) {
		t.Error("work() should still be reachable via the non-panic arm")
	}
}

func TestCFGOsExitTerminates(t *testing.T) {
	c := buildTestCFG(t, `package p
import "os"
func work()
func f(x bool) {
	if x {
		os.Exit(1)
	}
	work()
}`, "f")
	exitBlk := blockContaining(c, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Exit"
	})
	if exitBlk == nil {
		t.Fatal("os.Exit block not found")
	}
	workBlk := blockContaining(c, func(n ast.Node) bool { return isCallNamed(n, "work") })
	for _, s := range exitBlk.Succs {
		if c.Reachable(s, workBlk) {
			t.Error("os.Exit must terminate the path")
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := buildTestCFG(t, `package p
func one()
func two()
func f(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	}
}`, "f")
	oneBlk := blockContaining(c, func(n ast.Node) bool { return isCallNamed(n, "one") })
	twoBlk := blockContaining(c, func(n ast.Node) bool { return isCallNamed(n, "two") })
	if oneBlk == nil || twoBlk == nil {
		t.Fatal("case blocks not found")
	}
	if !c.Reachable(oneBlk, twoBlk) {
		t.Error("fallthrough should chain case 1 into case 2")
	}
}

func TestCFGReturnStopsFlow(t *testing.T) {
	c := buildTestCFG(t, `package p
func work()
func f(x bool) {
	if x {
		return
	}
	work()
}`, "f")
	retBlk := blockContaining(c, func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	workBlk := blockContaining(c, func(n ast.Node) bool { return isCallNamed(n, "work") })
	if retBlk == nil || workBlk == nil {
		t.Fatal("blocks not found")
	}
	for _, s := range retBlk.Succs {
		if s != c.Exit && c.Reachable(s, workBlk) {
			t.Error("return must not fall through")
		}
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	c := buildTestCFG(t, `package p
func work()
func f() {
	select {}
	work()
}`, "f")
	if c.Reachable(c.Entry, c.Exit) {
		t.Error("select{} blocks forever; exit must be unreachable")
	}
}

func TestCFGGotoForward(t *testing.T) {
	c := buildTestCFG(t, `package p
func work()
func f(x bool) {
	if x {
		goto done
	}
	work()
done:
	work()
}`, "f")
	if !c.Reachable(c.Entry, c.Exit) {
		t.Error("goto forward should still reach exit")
	}
}

func TestCFGRangeChannelLoop(t *testing.T) {
	c := buildTestCFG(t, `package p
func work(int)
func f(ch chan int) {
	for v := range ch {
		work(v)
	}
}`, "f")
	// Channel range exits only when the channel closes; structurally the
	// exit edge exists (close is a runtime event, not a CFG property).
	if !c.Reachable(c.Entry, c.Exit) {
		t.Error("range over channel should have a structural exit edge")
	}
	body := blockContaining(c, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		_, ok = es.X.(*ast.CallExpr)
		return ok
	})
	if body == nil {
		t.Fatal("range body not found")
	}
	if body.LoopDepth != 1 {
		t.Errorf("range body LoopDepth = %d, want 1", body.LoopDepth)
	}
}
