package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
)

// DeclassMode classifies a declassifier table entry.
type DeclassMode int

const (
	// DeclassSeal demotes raw taint to sealed (AEAD encryption): the value
	// may leave the enclave, but per-individual data stays barred from
	// checkpoints.
	DeclassSeal DeclassMode = iota
	// DeclassRelease drops taint entirely: the function's output is the
	// aggregate release product (or public metadata) the protocol exists
	// to produce.
	DeclassRelease
	// DeclassUnseal restores sealed taint to raw (decryption back inside
	// the trust boundary).
	DeclassUnseal
)

// SinkSpec describes one entry of the sink table.
type SinkSpec struct {
	// Kind is the human-readable description used in diagnostics.
	Kind string
	// ArgStart skips leading arguments that cannot carry payload.
	ArgStart int
	// ConnArg is the index (receiver-first for method calls) of a
	// connection argument whose static type can exempt the call; -1 when
	// the sink has none.
	ConnArg int
	// Checkpoint marks persistence sinks checked by checkpointplain
	// instead of plaintext-egress sinks checked by secretflow.
	Checkpoint bool
	// LogLeak routes static-type findings at this sink to the logleak
	// analyzer (formatting/logging/error sinks) instead of secretflow.
	LogLeak bool
}

// TaintSpec is the policy the taint engine enforces: which functions produce
// secrets, which calls declassify them, and where they must not go. Keys are
// types.Func.FullName strings ("fmt.Errorf",
// "(*gendpr/internal/genome.Matrix).AlleleCounts") and qualified type names
// ("gendpr/internal/genome.Matrix"). Source annotations in the analyzed code
// (//gendpr:secret, //gendpr:source, //gendpr:declassifier) extend the
// tables without touching this struct.
type TaintSpec struct {
	SecretTypes   map[string]SecretClass
	SourceFuncs   map[string]SecretClass
	Declassifiers map[string]DeclassMode
	Sinks         map[string]SinkSpec
	// FormatFuncs build strings from their operands: they propagate taint
	// and are logleak sites for secret-typed arguments.
	FormatFuncs map[string]bool
	// ReleaseTypes lists structs that ARE the released product (reports,
	// selections, release documents): writes into their fields carry no
	// taint, so reading them back anywhere — examples printing a power
	// figure — is clean. Qualified names ("gendpr/internal/core.Report").
	ReleaseTypes []string
	// ExemptConnType is the static type proving a transport send leaves
	// the enclave AEAD-protected.
	ExemptConnType string
	// NoEgressSinkPkgs lists packages whose own bodies skip egress-sink
	// checks (the transport layer legitimately writes ciphertext to
	// writers; the checkpoint codec writes state to disk).
	NoEgressSinkPkgs []string
	// NoCkptSinkPkgs lists packages whose own bodies skip checkpoint-sink
	// checks (the checkpoint package implements the sinks).
	NoCkptSinkPkgs []string
	// CheckpointStructPkgs lists packages whose struct declarations are
	// structurally checked: no field may be able to hold per-individual
	// data.
	CheckpointStructPkgs []string
	// Oblivious, when non-nil, enables the obliviousflow analyzer: inside
	// its Scopes, per-individual data must not steer control flow or memory
	// addressing except through a declared barrier.
	Oblivious *ObliviousSpec
	// OrderSinks maps function keys to a description of the order-sensitive
	// statistic they compute: order-nondeterministic values (map iteration,
	// select races, goroutine fan-in) must not reach them, because every
	// federation member must derive bit-identical Table-4/Table-5 figures.
	OrderSinks map[string]string
	// OrderBarriers lists functions whose result is order-deterministic
	// regardless of input ordering (sorts, indexed merges). The
	// //gendpr:ordered annotation extends this table in source.
	OrderBarriers map[string]bool
}

// ObliviousSpec configures the obliviousflow analyzer.
type ObliviousSpec struct {
	// Scopes are the access-pattern-critical regions: packages (and
	// optionally specific files) whose code executes where the paper's §2
	// host adversary observes control flow and memory addresses.
	Scopes []Scope
	// Barriers are the sanctioned data-oblivious primitives, keyed like
	// every other engine table by types.Func.FullName. Their bodies are
	// exempt (the branch/index inside IS the constant-time or ORAM
	// implementation) and taint handed to them does not propagate blame to
	// callers. The //gendpr:oblivious annotation extends this table.
	Barriers map[string]bool
}

// DefaultObliviousSpec returns GenDPR's oblivious-execution policy: the
// enclave-resident packages that implement Path ORAM, secret sharing,
// Paillier and the oblivious Provider, with the ORAM access path and the
// constant-time select/compare helpers as sanctioned barriers.
func DefaultObliviousSpec() *ObliviousSpec {
	return &ObliviousSpec{
		Scopes: []Scope{
			{PathPrefix: "gendpr/internal/oram"},
			{PathPrefix: "gendpr/internal/oblivious"},
			{PathPrefix: "gendpr/internal/secshare"},
			{PathPrefix: "gendpr/internal/paillier"},
			{PathPrefix: "gendpr/internal/enclave"},
			{PathPrefix: "gendpr/internal/core", Files: []string{"oblivious_member.go"}},
		},
		Barriers: map[string]bool{
			// The ORAM access path: its stash walk and position-map reads
			// are the oblivious storage primitive itself; every real access
			// touches a full root-to-leaf path regardless of the index.
			"(*gendpr/internal/oram.ORAM).access": true,
			"(*gendpr/internal/oram.ORAM).Read":   true,
			"(*gendpr/internal/oram.ORAM).Write":  true,
			"(*gendpr/internal/oram.Store).Get":   true,
			"(*gendpr/internal/oram.Store).Put":   true,
			// Constant-time selection over secret operands.
			"gendpr/internal/oblivious.Select64":    true,
			"gendpr/internal/oblivious.SelectFloat": true,
			"gendpr/internal/oblivious.LessBit":     true,
			// The ct helper set: branchless select/compare over uint64
			// masks. Each also carries a //gendpr:oblivious annotation; the
			// table entries keep the spec authoritative on its own.
			"gendpr/internal/oblivious/ct.Select": true,
			"gendpr/internal/oblivious/ct.Eq":     true,
			"gendpr/internal/oblivious/ct.Less":   true,
			"gendpr/internal/oblivious/ct.Bit":    true,
		},
	}
}

// DefaultTaintSpec returns GenDPR's policy: the secret types and accessors
// of the genome/lrtest/seal layers, the enclave-boundary declassifiers, and
// the host-visible sinks of the threat model (STATIC_ANALYSIS.md documents
// every table).
func DefaultTaintSpec() *TaintSpec {
	logSink := func(kind string) SinkSpec { return SinkSpec{Kind: kind, ConnArg: -1, LogLeak: true} }
	writeSink := func(kind string) SinkSpec { return SinkSpec{Kind: kind, ConnArg: -1} }
	spec := &TaintSpec{
		SecretTypes: map[string]SecretClass{
			"gendpr/internal/genome.Matrix":     ClassIndividual,
			"gendpr/internal/genome.ColumnBits": ClassIndividual,
			"gendpr/internal/genome.Cohort":     ClassIndividual,
			"gendpr/internal/lrtest.Matrix":     ClassIndividual,
			"gendpr/internal/lrtest.BitMatrix":  ClassIndividual,
			"gendpr/internal/lrtest.Genotypes":  ClassIndividual,
			"gendpr/internal/seal.KeyPair":      ClassIndividual,
			"gendpr/internal/seal.SigningKey":   ClassIndividual,
			"gendpr/internal/lrtest.LogRatios":  ClassAggregate,
			"gendpr/internal/genome.PairStats":  ClassAggregate,
		},
		SourceFuncs: map[string]SecretClass{
			// Per-individual sources: generators, decoders, key material.
			"gendpr/internal/genome.Generate":        ClassIndividual,
			"gendpr/internal/genome.MatrixFromBytes": ClassIndividual,
			// Single-genotype accessors: their result IS one individual's
			// allele, the unit the oblivious machinery exists to hide.
			"(*gendpr/internal/genome.Matrix).Get":       ClassIndividual,
			"(*gendpr/internal/genome.Matrix).GetBit":    ClassIndividual,
			"(*gendpr/internal/genome.Matrix).RowWords":  ClassIndividual,
			"gendpr/internal/lrtest.FromBytes":           ClassIndividual,
			"gendpr/internal/lrtest.DecodeWire":          ClassIndividual,
			"gendpr/internal/lrtest.DecodeWireBit":       ClassIndividual,
			"gendpr/internal/lrtest.DecodePatternWire":   ClassIndividual,
			"gendpr/internal/lrtest.BitFromDense":        ClassIndividual,
			"gendpr/internal/seal.NewKey":                ClassIndividual,
			"gendpr/internal/seal.HKDF":                  ClassIndividual,
			"(*gendpr/internal/seal.KeyPair).SessionKey": ClassIndividual,

			// Aggregators: these read per-individual data but their result
			// is a cohort-level statistic — still secret until released,
			// but legitimate checkpoint content.
			"(*gendpr/internal/genome.Matrix).AlleleCount":     ClassAggregate,
			"(*gendpr/internal/genome.Matrix).AlleleCounts":    ClassAggregate,
			"(*gendpr/internal/genome.Matrix).PairCount":       ClassAggregate,
			"(*gendpr/internal/genome.Matrix).PairStats":       ClassAggregate,
			"(*gendpr/internal/genome.ColumnBits).AlleleCount": ClassAggregate,
			"(*gendpr/internal/genome.ColumnBits).PairCount":   ClassAggregate,
			"(*gendpr/internal/genome.ColumnBits).PairStats":   ClassAggregate,
			"gendpr/internal/genome.Frequencies":               ClassAggregate,
			"gendpr/internal/genome.PairStatsFromCounts":       ClassAggregate,
			// The Provider contract: its accessors return cohort-level
			// statistics regardless of how the implementation stores the
			// shard (LocalMember pre-aggregates, ObliviousMember popcounts
			// ORAM columns). LRMatrix is deliberately absent — its result
			// is a per-individual matrix and stays ClassIndividual.
			"(gendpr/internal/core.Provider).Counts":                  ClassAggregate,
			"(gendpr/internal/core.Provider).CaseN":                   ClassAggregate,
			"(gendpr/internal/core.Provider).PairStats":               ClassAggregate,
			"(gendpr/internal/core.BatchPairProvider).PairStatsBatch": ClassAggregate,
			"(*gendpr/internal/core.ObliviousMember).Counts":          ClassAggregate,
			"(*gendpr/internal/core.ObliviousMember).PairStats":       ClassAggregate,
			"gendpr/internal/lrtest.NewLogRatios":                     ClassAggregate,
			"gendpr/internal/lrtest.Threshold":                        ClassAggregate,
			"gendpr/internal/lrtest.Power":                            ClassAggregate,
			"gendpr/internal/lrtest.Evaluate":                         ClassAggregate,
			"gendpr/internal/lrtest.EvaluateBit":                      ClassAggregate,
			"gendpr/internal/lrtest.DiscriminabilityOrder":            ClassAggregate,
			"gendpr/internal/lrtest.DiscriminabilityOrderBit":         ClassAggregate,
			"(*gendpr/internal/lrtest.Adversary).Score":               ClassAggregate,
			"(*gendpr/internal/lrtest.Adversary).DetectionPower":      ClassAggregate,
		},
		Declassifiers: map[string]DeclassMode{
			// Sealing: AEAD protection for enclave egress.
			"gendpr/internal/seal.Encrypt":                     DeclassSeal,
			"(*gendpr/internal/enclave.Enclave).Seal":          DeclassSeal,
			"(*gendpr/internal/enclave.Enclave).SealVersioned": DeclassSeal,
			// Unsealing inside the trust boundary: decrypted payloads are
			// re-classified by the decoder that parses them (the decoder
			// sources above), not by the ciphertext they came from.
			"gendpr/internal/seal.Decrypt":                       DeclassRelease,
			"(*gendpr/internal/enclave.Enclave).Unseal":          DeclassRelease,
			"(*gendpr/internal/enclave.Enclave).UnsealVersioned": DeclassRelease,
			// Release boundary: the safe-selection result and the release
			// document are the assessed product the protocol publishes.
			"gendpr/internal/lrtest.SelectSafe":             DeclassRelease,
			"gendpr/internal/lrtest.SelectSafeWithOrder":    DeclassRelease,
			"gendpr/internal/lrtest.SelectSafeBit":          DeclassRelease,
			"gendpr/internal/lrtest.SelectSafeBitWithOrder": DeclassRelease,
			"gendpr/internal/release.Build":                 DeclassRelease,
			// Wire-codec plumbing is class-neutral: the bytes a Decoder walks
			// are framing, and secrets re-enter through the semantic decoders
			// declared as sources (lrtest wire decoders, genome matrix
			// parsers). Without this the shared Decoder buffer smears
			// per-individual taint onto every decoded aggregate module-wide.
			"(*gendpr/internal/wire.Decoder).Uint64":   DeclassRelease,
			"(*gendpr/internal/wire.Decoder).Int64":    DeclassRelease,
			"(*gendpr/internal/wire.Decoder).Int":      DeclassRelease,
			"(*gendpr/internal/wire.Decoder).Float64":  DeclassRelease,
			"(*gendpr/internal/wire.Decoder).Bool":     DeclassRelease,
			"(*gendpr/internal/wire.Decoder).Blob":     DeclassRelease,
			"(*gendpr/internal/wire.Decoder).String":   DeclassRelease,
			"(*gendpr/internal/wire.Decoder).Int64s":   DeclassRelease,
			"(*gendpr/internal/wire.Decoder).Ints":     DeclassRelease,
			"(*gendpr/internal/wire.Decoder).Float64s": DeclassRelease,
			// Public derivations of key material.
			"(*gendpr/internal/seal.KeyPair).PublicBytes": DeclassRelease,
			"(*gendpr/internal/seal.SigningKey).Sign":     DeclassRelease,
			"(*gendpr/internal/seal.SigningKey).Public":   DeclassRelease,
			// Assessment entry points: their *Report / result values are the
			// released product of the protocol (thresholded power figures and
			// the safe-SNP release), assessed safe to publish by construction.
			"gendpr/internal/core.RunAssessment":                     DeclassRelease,
			"gendpr/internal/core.RunAssessmentWithOptions":          DeclassRelease,
			"gendpr/internal/core.RunAssessmentResilient":            DeclassRelease,
			"gendpr/internal/core.RunAssessmentResilientWithOptions": DeclassRelease,
			"gendpr/internal/core.RunCentralized":                    DeclassRelease,
			"gendpr/internal/core.RunDistributed":                    DeclassRelease,
			"gendpr/internal/core.RunNaive":                          DeclassRelease,
			"gendpr.AssessCentralized":                               DeclassRelease,
			"gendpr.AssessDistributed":                               DeclassRelease,
			"gendpr.AssessNaive":                                     DeclassRelease,
			"gendpr.AssessFederated":                                 DeclassRelease,
			"gendpr.AssessFederatedTCP":                              DeclassRelease,
			"gendpr.AssessFederatedWithOptions":                      DeclassRelease,
			"gendpr.AssessFederatedTCPWithOptions":                   DeclassRelease,
			"gendpr/internal/federation.RunInProcess":                DeclassRelease,
			"gendpr/internal/federation.RunInProcessWithOptions":     DeclassRelease,
			"gendpr/internal/federation.RunInProcessWithFailover":    DeclassRelease,
			"gendpr/internal/federation.RunOverTCP":                  DeclassRelease,
			"gendpr/internal/federation.RunOverTCPWithOptions":       DeclassRelease,
			"(*gendpr/internal/federation.Leader).RunLinks":          DeclassRelease,
			"(*gendpr/internal/federation.Leader).RunLinksContext":   DeclassRelease,
		},
		Sinks: map[string]SinkSpec{
			"fmt.Print":                       logSink("fmt output (host-visible)"),
			"fmt.Printf":                      logSink("fmt output (host-visible)"),
			"fmt.Println":                     logSink("fmt output (host-visible)"),
			"fmt.Fprint":                      logSink("fmt stream output"),
			"fmt.Fprintf":                     logSink("fmt stream output"),
			"fmt.Fprintln":                    logSink("fmt stream output"),
			"log.Print":                       logSink("log output (host-visible)"),
			"log.Printf":                      logSink("log output (host-visible)"),
			"log.Println":                     logSink("log output (host-visible)"),
			"log.Fatal":                       logSink("log output (host-visible)"),
			"log.Fatalf":                      logSink("log output (host-visible)"),
			"log.Fatalln":                     logSink("log output (host-visible)"),
			"log.Panic":                       logSink("log output (host-visible)"),
			"log.Panicf":                      logSink("log output (host-visible)"),
			"log.Panicln":                     logSink("log output (host-visible)"),
			"(*log.Logger).Print":             logSink("log output (host-visible)"),
			"(*log.Logger).Printf":            logSink("log output (host-visible)"),
			"(*log.Logger).Println":           logSink("log output (host-visible)"),
			"(*log.Logger).Fatal":             logSink("log output (host-visible)"),
			"(*log.Logger).Fatalf":            logSink("log output (host-visible)"),
			"fmt.Errorf":                      logSink("an error message"),
			"errors.New":                      logSink("an error message"),
			"(io.Writer).Write":               writeSink("an io.Writer"),
			"io.WriteString":                  writeSink("an io.Writer"),
			"(*os.File).Write":                writeSink("a file write"),
			"(*os.File).WriteString":          writeSink("a file write"),
			"(*os.File).WriteAt":              writeSink("a file write"),
			"os.WriteFile":                    writeSink("a file write"),
			"(*bufio.Writer).Write":           writeSink("a buffered stream write"),
			"(*bufio.Writer).WriteString":     writeSink("a buffered stream write"),
			"(*encoding/json.Encoder).Encode": writeSink("a JSON stream write"),

			"(gendpr/internal/transport.Conn).Send":  {Kind: "an unsecured transport send", ConnArg: 0},
			"gendpr/internal/transport.SendDeadline": {Kind: "an unsecured transport send", ConnArg: 0},
			"gendpr/internal/transport.SendContext":  {Kind: "an unsecured transport send", ConnArg: 1},

			"gendpr/internal/checkpoint.Encode":            {Kind: "a checkpoint (checkpoint.Encode)", ConnArg: -1, Checkpoint: true},
			"(gendpr/internal/checkpoint.Store).Save":      {Kind: "a checkpoint (Store.Save)", ConnArg: -1, Checkpoint: true},
			"(*gendpr/internal/checkpoint.MemStore).Save":  {Kind: "a checkpoint (Store.Save)", ConnArg: -1, Checkpoint: true},
			"(*gendpr/internal/checkpoint.FileStore).Save": {Kind: "a checkpoint (Store.Save)", ConnArg: -1, Checkpoint: true},
		},
		FormatFuncs: map[string]bool{
			"fmt.Sprint":   true,
			"fmt.Sprintf":  true,
			"fmt.Sprintln": true,
			"fmt.Append":   true,
			"fmt.Appendf":  true,
			"fmt.Appendln": true,
		},
		ReleaseTypes: []string{
			"gendpr/internal/core.Report",
			"gendpr/internal/core.Selection",
			"gendpr/internal/core.Timings",
			"gendpr/internal/federation.Result",
			"gendpr/internal/federation.TrafficStats",
			"gendpr/internal/release.Document",
			"gendpr/internal/release.SNPStatistic",
			"gendpr/internal/release.Parameters",
		},
		ExemptConnType: "*gendpr/internal/transport.SecureConn",
		NoEgressSinkPkgs: []string{
			"gendpr/internal/transport",
			"gendpr/internal/checkpoint",
			// vcf is operator-side tooling: it writes synthetic cohorts the
			// operator generated locally, outside the enclave boundary.
			"gendpr/internal/vcf",
		},
		NoCkptSinkPkgs:       []string{"gendpr/internal/checkpoint"},
		CheckpointStructPkgs: []string{"gendpr/internal/checkpoint"},
		Oblivious:            DefaultObliviousSpec(),
		OrderSinks: map[string]string{
			// Table-4/Table-5 statistic constructors: every member must feed
			// them identically-ordered inputs or the federated floats drift.
			"gendpr/internal/stats.MAF":                       "stats.MAF (minor allele frequency)",
			"gendpr/internal/stats.NewSingleTable":            "stats.NewSingleTable (per-SNP contingency table)",
			"gendpr/internal/stats.LDPValue":                  "stats.LDPValue (LD chi-square p-value)",
			"gendpr/internal/stats.ChiSquareSurvival":         "stats.ChiSquareSurvival",
			"gendpr/internal/lrtest.NewLogRatios":             "lrtest.NewLogRatios (Table-4 LR vector)",
			"gendpr/internal/lrtest.Evaluate":                 "lrtest.Evaluate (detection-power figure)",
			"gendpr/internal/lrtest.EvaluateBit":              "lrtest.EvaluateBit (detection-power figure)",
			"gendpr/internal/lrtest.Threshold":                "lrtest.Threshold (LR decision threshold)",
			"gendpr/internal/lrtest.Power":                    "lrtest.Power (detection-power figure)",
			"gendpr/internal/lrtest.SelectSafe":               "lrtest.SelectSafe (released SNP selection)",
			"gendpr/internal/lrtest.SelectSafeWithOrder":      "lrtest.SelectSafeWithOrder (released SNP selection)",
			"gendpr/internal/lrtest.SelectSafeBit":            "lrtest.SelectSafeBit (released SNP selection)",
			"gendpr/internal/lrtest.SelectSafeBitWithOrder":   "lrtest.SelectSafeBitWithOrder (released SNP selection)",
			"gendpr/internal/lrtest.DiscriminabilityOrder":    "lrtest.DiscriminabilityOrder (greedy LD scan order)",
			"gendpr/internal/lrtest.DiscriminabilityOrderBit": "lrtest.DiscriminabilityOrderBit (greedy LD scan order)",
		},
		OrderBarriers: map[string]bool{
			"sort.Float64s":         true,
			"sort.Ints":             true,
			"sort.Strings":          true,
			"sort.Slice":            true,
			"sort.SliceStable":      true,
			"sort.Sort":             true,
			"sort.Stable":           true,
			"slices.Sort":           true,
			"slices.SortFunc":       true,
			"slices.SortStableFunc": true,
		},
	}
	return spec
}

// annotationDirective matches //gendpr:secret, //gendpr:source(class),
// //gendpr:declassifier[(mode)], //gendpr:oblivious and //gendpr:ordered,
// each with an optional trailing ": note".
var annotationDirective = regexp.MustCompile(`^//gendpr:(secret|source|declassifier|oblivious|ordered)(?:\(([a-z]+)\))?(?:\s*:.*)?$`)

func classFromArg(arg string) SecretClass {
	switch arg {
	case "aggregate":
		return ClassAggregate
	default: // "", "individual"
		return ClassIndividual
	}
}

// engineFinding is one taint-engine diagnostic, attributed to an analyzer
// and the package it belongs to.
type engineFinding struct {
	analyzer string
	pkgPath  string
	pos      token.Pos
	msg      string
}

// taintEngine holds the module-wide analysis state shared by the secretflow,
// logleak and checkpointplain analyzers.
type taintEngine struct {
	mod  *Module
	spec *TaintSpec
	cg   *callGraph

	// Annotation-derived extensions of the spec tables.
	secretFields map[*types.Var]SecretClass
	secretTypes  map[*types.TypeName]SecretClass
	srcAnnot     map[*types.Func]SecretClass
	declAnnot    map[*types.Func]DeclassMode
	obvAnnot     map[*types.Func]bool
	ordAnnot     map[*types.Func]bool

	// Module-level fixpoint state.
	summaries  map[*types.Func]*funcSummary
	fieldTaint map[*types.Var]taintVal
	changed    bool

	// releaseFields holds every field of a spec.ReleaseTypes struct: writes
	// into them are dropped, so reading a released product back is clean.
	releaseFields map[*types.Var]bool

	// sup holds the module's gendpr:allow directives. The engine honors them
	// while building summaries: a justified sink use neither reports nor
	// propagates blame to its callers.
	sup suppressions

	typeClass map[types.Type]SecretClass

	noEgressSink map[string]bool
	noCkptSink   map[string]bool

	findings []engineFinding
	seen     map[string]bool
}

type namedSummary struct {
	name string
	sum  *funcSummary
}

func newTaintEngine(mod *Module, spec *TaintSpec) *taintEngine {
	eng := &taintEngine{
		mod:           mod,
		spec:          spec,
		cg:            buildCallGraph(mod),
		secretFields:  make(map[*types.Var]SecretClass),
		secretTypes:   make(map[*types.TypeName]SecretClass),
		srcAnnot:      make(map[*types.Func]SecretClass),
		declAnnot:     make(map[*types.Func]DeclassMode),
		obvAnnot:      make(map[*types.Func]bool),
		ordAnnot:      make(map[*types.Func]bool),
		summaries:     make(map[*types.Func]*funcSummary),
		fieldTaint:    make(map[*types.Var]taintVal),
		typeClass:     make(map[types.Type]SecretClass),
		noEgressSink:  make(map[string]bool),
		noCkptSink:    make(map[string]bool),
		releaseFields: make(map[*types.Var]bool),
		sup:           make(suppressions),
		seen:          make(map[string]bool),
	}
	for _, p := range spec.NoEgressSinkPkgs {
		eng.noEgressSink[p] = true
	}
	for _, p := range spec.NoCkptSinkPkgs {
		eng.noCkptSink[p] = true
	}
	var discard []Diagnostic
	for _, pkg := range mod.Packages {
		collectSuppressions(pkg.Fset, pkg.Files, eng.sup, &discard)
	}
	eng.collectAnnotations()
	eng.run()
	return eng
}

// collectAnnotations scans declaration comments for //gendpr:secret,
// //gendpr:source and //gendpr:declassifier directives.
func (eng *taintEngine) collectAnnotations() {
	for _, pkg := range eng.mod.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch decl := d.(type) {
				case *ast.FuncDecl:
					kind, arg, ok := directiveIn(decl.Doc)
					if !ok {
						continue
					}
					fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
					if fn == nil {
						continue
					}
					switch kind {
					case "source", "secret":
						eng.srcAnnot[fn] = classFromArg(arg)
					case "declassifier":
						eng.declAnnot[fn] = declassModeFromArg(arg)
					case "oblivious":
						eng.obvAnnot[fn] = true
					case "ordered":
						eng.ordAnnot[fn] = true
					}
				case *ast.GenDecl:
					eng.collectTypeAnnotations(pkg, decl)
				}
			}
		}
	}
}

func declassModeFromArg(arg string) DeclassMode {
	switch arg {
	case "release":
		return DeclassRelease
	case "unseal":
		return DeclassUnseal
	default: // "", "seal"
		return DeclassSeal
	}
}

func (eng *taintEngine) collectTypeAnnotations(pkg *Package, decl *ast.GenDecl) {
	if decl.Tok != token.TYPE && decl.Tok != token.VAR {
		return
	}
	for _, s := range decl.Specs {
		ts, ok := s.(*ast.TypeSpec)
		if !ok {
			continue
		}
		release := false
		if pkg.Path != "" {
			qual := pkg.Path + "." + ts.Name.Name
			for _, r := range eng.spec.ReleaseTypes {
				if r == qual {
					release = true
				}
			}
		}
		typeCls := SecretClass(0)
		if kind, arg, ok := firstDirective(decl.Doc, ts.Doc, ts.Comment); ok && kind == "secret" {
			typeCls = classFromArg(arg)
			if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
				eng.secretTypes[tn] = typeCls
			}
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			if release {
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						eng.releaseFields[v] = true
					}
				}
			}
			// A type-level secret annotation covers every field of the
			// struct; field-level annotations refine individual fields.
			if typeCls != 0 {
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						eng.secretFields[v] |= typeCls
					}
				}
			}
			kind, arg, ok := firstDirective(field.Doc, field.Comment)
			if !ok || kind != "secret" {
				continue
			}
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					eng.secretFields[v] |= classFromArg(arg)
				}
			}
		}
	}
}

func firstDirective(groups ...*ast.CommentGroup) (kind, arg string, ok bool) {
	for _, g := range groups {
		if kind, arg, ok = directiveIn(g); ok {
			return kind, arg, true
		}
	}
	return "", "", false
}

func directiveIn(g *ast.CommentGroup) (kind, arg string, ok bool) {
	if g == nil {
		return "", "", false
	}
	for _, c := range g.List {
		if m := annotationDirective.FindStringSubmatch(c.Text); m != nil {
			return m[1], m[2], true
		}
	}
	return "", "", false
}

// run drives the module fixpoint and the final reporting passes.
func (eng *taintEngine) run() {
	decls := eng.sortedDecls()
	for iter := 0; iter < 64; iter++ {
		eng.changed = false
		for _, fd := range decls {
			fa := newFuncAnalysis(eng, fd, false)
			sum := fa.run()
			if sum.mergeInto(eng.summaryFor(fd.fn)) {
				eng.changed = true
			}
		}
		if !eng.changed {
			break
		}
	}
	for _, fd := range decls {
		newFuncAnalysis(eng, fd, true).run()
	}
	eng.checkpointStructPass()
}

func (eng *taintEngine) sortedDecls() []*funcDecl {
	decls := make([]*funcDecl, 0, len(eng.cg.funcs))
	for _, fd := range eng.cg.funcs {
		decls = append(decls, fd)
	}
	sort.Slice(decls, func(i, j int) bool {
		a := decls[i].pkg.Fset.Position(decls[i].decl.Pos())
		b := decls[j].pkg.Fset.Position(decls[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return decls
}

func (eng *taintEngine) summaryFor(fn *types.Func) *funcSummary {
	s, ok := eng.summaries[fn]
	if !ok {
		s = &funcSummary{}
		if sig, ok := fn.Type().(*types.Signature); ok {
			s.nparams = sig.Params().Len()
			if sig.Recv() != nil {
				s.nparams++
			}
			s.results = make([]taintVal, sig.Results().Len())
		}
		eng.summaries[fn] = s
	}
	return s
}

// summariesFor returns the summaries standing behind a call to fn: the
// function's own summary when it has a module body, or the summaries of the
// in-module implementations when fn is an interface method.
func (eng *taintEngine) summariesFor(fn *types.Func, impls []*types.Func) []*namedSummary {
	var out []*namedSummary
	if _, ok := eng.cg.funcs[fn]; ok {
		out = append(out, &namedSummary{name: eng.cg.name(fn), sum: eng.summaryFor(fn)})
	}
	for _, m := range impls {
		if _, ok := eng.cg.funcs[m]; ok {
			out = append(out, &namedSummary{name: eng.cg.name(m), sum: eng.summaryFor(m)})
		}
	}
	return out
}

// obliviousBarrier reports whether fn is a sanctioned data-oblivious
// primitive: its body is exempt from oblivious-flow checks (the branch or
// table walk inside IS the constant-time implementation) and per-individual
// taint handed to it does not propagate blame to callers.
func (eng *taintEngine) obliviousBarrier(fn *types.Func) bool {
	if fn == nil || eng.spec.Oblivious == nil {
		return false
	}
	return eng.spec.Oblivious.Barriers[eng.cg.name(fn)] || eng.obvAnnot[fn]
}

// obliviousScope reports whether fd's body executes inside an
// access-pattern-critical region, where the host adversary observes control
// flow and memory addresses.
func (eng *taintEngine) obliviousScope(fd *funcDecl) bool {
	if eng.spec.Oblivious == nil {
		return false
	}
	base := filepath.Base(fd.pkg.Fset.Position(fd.decl.Pos()).Filename)
	for _, s := range eng.spec.Oblivious.Scopes {
		if s.matches(fd.pkg.Path, base) {
			return true
		}
	}
	return false
}

// orderBarrier reports whether a call to fn (engine table key `key`) yields
// order-deterministic output regardless of input arrival order.
func (eng *taintEngine) orderBarrier(fn *types.Func, key string) bool {
	if eng.spec.OrderBarriers[key] {
		return true
	}
	return fn != nil && eng.ordAnnot[fn]
}

func (eng *taintEngine) declassifierFor(fn *types.Func, key string) (DeclassMode, bool) {
	if mode, ok := eng.declAnnot[fn]; ok {
		return mode, true
	}
	mode, ok := eng.spec.Declassifiers[key]
	return mode, ok
}

func (eng *taintEngine) sourceFor(fn *types.Func, key string) (SecretClass, bool) {
	if cls, ok := eng.srcAnnot[fn]; ok {
		return cls, true
	}
	cls, ok := eng.spec.SourceFuncs[key]
	return cls, ok
}

// writeField routes taint flowing into a struct field: the concrete class
// component becomes a module-global fact, the parameter-relative component
// lands in the current function's summary.
func (eng *taintEngine) writeField(f *types.Var, t taintVal, fa *funcAnalysis) {
	if eng.releaseFields[f] {
		// Fields of release-product structs are the declared output of the
		// protocol: storing into them is the release boundary.
		return
	}
	conc := taintVal{raw: t.raw, sealed: t.sealed}
	if !conc.empty() {
		u := eng.fieldTaint[f].union(conc)
		if u != eng.fieldTaint[f] {
			eng.fieldTaint[f] = u
			eng.changed = true
			fa.changed = true
		}
	}
	if t.params != 0 || t.sealedParams != 0 {
		rel := taintVal{params: t.params, sealedParams: t.sealedParams}
		if fa.sum.fieldWrites == nil {
			fa.sum.fieldWrites = make(map[*types.Var]taintVal)
		}
		u := fa.sum.fieldWrites[f].union(rel)
		if u != fa.sum.fieldWrites[f] {
			fa.sum.fieldWrites[f] = u
			fa.changed = true
		}
	}
}

// typeSecretClass reports which secret classes a value of type T can carry,
// from the type tables, annotations, and structural containment.
func (eng *taintEngine) typeSecretClass(T types.Type) SecretClass {
	if T == nil {
		return 0
	}
	if cls, ok := eng.typeClass[T]; ok {
		return cls
	}
	eng.typeClass[T] = 0 // cycle guard
	cls := eng.typeSecretClassSlow(T)
	eng.typeClass[T] = cls
	return cls
}

func (eng *taintEngine) typeSecretClassSlow(T types.Type) SecretClass {
	switch t := T.(type) {
	case *types.Named:
		tn := t.Obj()
		if cls, ok := eng.secretTypes[tn]; ok {
			return cls
		}
		if tn.Pkg() != nil {
			if cls, ok := eng.spec.SecretTypes[tn.Pkg().Path()+"."+tn.Name()]; ok {
				return cls
			}
		}
		return eng.typeSecretClass(t.Underlying())
	case *types.Pointer:
		return eng.typeSecretClass(t.Elem())
	case *types.Slice:
		return eng.typeSecretClass(t.Elem())
	case *types.Array:
		return eng.typeSecretClass(t.Elem())
	case *types.Chan:
		return eng.typeSecretClass(t.Elem())
	case *types.Map:
		return eng.typeSecretClass(t.Key()) | eng.typeSecretClass(t.Elem())
	case *types.Struct:
		var cls SecretClass
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			cls |= eng.secretFields[f]
			cls |= eng.typeSecretClass(f.Type())
		}
		return cls
	}
	return 0
}

func (eng *taintEngine) addFinding(analyzer string, pkg *Package, pos token.Pos, msg string) {
	p := pkg.Fset.Position(pos)
	key := analyzer + "\x00" + p.String() + "\x00" + msg
	if eng.seen[key] {
		return
	}
	eng.seen[key] = true
	eng.findings = append(eng.findings, engineFinding{
		analyzer: analyzer,
		pkgPath:  pkg.Path,
		pos:      pos,
		msg:      msg,
	})
}

func (eng *taintEngine) findingsFor(analyzer, pkgPath string) []engineFinding {
	var out []engineFinding
	for _, f := range eng.findings {
		if f.analyzer == analyzer && f.pkgPath == pkgPath {
			out = append(out, f)
		}
	}
	return out
}

// checkpointStructPass structurally checks the checkpoint packages: no
// declared struct field may be able to hold per-individual data, regardless
// of whether a flow to it was observed.
func (eng *taintEngine) checkpointStructPass() {
	want := make(map[string]bool, len(eng.spec.CheckpointStructPkgs))
	for _, p := range eng.spec.CheckpointStructPkgs {
		want[p] = true
	}
	for _, pkg := range eng.mod.Packages {
		if !want[pkg.Path] || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok || st.Fields == nil {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							v, ok := pkg.Info.Defs[name].(*types.Var)
							if !ok {
								continue
							}
							if eng.typeSecretClass(v.Type())&ClassIndividual != 0 {
								eng.addFinding("checkpointplain", pkg, name.Pos(),
									"checkpoint struct field "+ts.Name.Name+"."+name.Name+
										" can hold per-individual data; checkpoints must be declared post-aggregation")
							}
						}
					}
				}
			}
		}
	}
}

// TaintRegistry shares one taint-engine run per module across the three
// taint analyzers — the engine is module-global, the analyzers report its
// findings per package.
type TaintRegistry struct {
	spec  *TaintSpec
	mu    sync.Mutex
	cache map[*Module]*taintEngine
}

// NewTaintRegistry builds a registry enforcing spec.
func NewTaintRegistry(spec *TaintSpec) *TaintRegistry {
	return &TaintRegistry{spec: spec, cache: make(map[*Module]*taintEngine)}
}

func (r *TaintRegistry) engine(mod *Module) *taintEngine {
	r.mu.Lock()
	defer r.mu.Unlock()
	if eng, ok := r.cache[mod]; ok {
		return eng
	}
	eng := newTaintEngine(mod, r.spec)
	r.cache[mod] = eng
	return eng
}

func taintAnalyzer(name, doc string, reg *TaintRegistry) *Analyzer {
	return &Analyzer{
		Name:         name,
		Doc:          doc,
		ModuleGlobal: true,
		Run: func(p *Pass) {
			if p.Mod == nil {
				return
			}
			eng := reg.engine(p.Mod)
			for _, f := range eng.findingsFor(name, p.Pkg.Path) {
				p.Reportf(f.pos, "%s", f.msg)
			}
		},
	}
}

// NewSecretFlow reports plaintext flows of secret data (genotype matrices,
// LR matrices, MAF/pair-stat vectors, key material) into host-visible sinks:
// logging, error construction, writer/file output, and unsecured transport
// sends. Flows through the declassifier table (sealing, release building,
// safe selection) are silent.
func NewSecretFlow(reg *TaintRegistry) *Analyzer {
	return taintAnalyzer("secretflow",
		"secret data must not reach host-visible sinks in plaintext; only sealed or released forms may leave the enclave boundary",
		reg)
}

// NewLogLeak reports secret-typed values reaching formatting, logging and
// error construction — including %v on structs containing secret fields —
// based on static types, independent of observed value flow.
func NewLogLeak(reg *TaintRegistry) *Analyzer {
	return taintAnalyzer("logleak",
		"values whose static type can hold secret data must not be formatted into strings, log output or error messages",
		reg)
}

// NewCheckpointPlain reports per-individual data reaching checkpoint
// persistence — sealed or not, because checkpoints outlive the enclave —
// and checkpoint struct fields that could hold such data.
func NewCheckpointPlain(reg *TaintRegistry) *Analyzer {
	return taintAnalyzer("checkpointplain",
		"checkpoints must contain only declared post-aggregation state; per-individual data is never persisted, even encrypted",
		reg)
}

// NewObliviousFlow reports per-individual data steering control flow or
// memory addressing inside the access-pattern-critical packages: a
// ClassIndividual-tainted value must not decide a branch, bound a loop,
// index memory, size an allocation or feed a panic, except inside a declared
// oblivious barrier (constant-time selects, the ORAM access path).
func NewObliviousFlow(reg *TaintRegistry) *Analyzer {
	return taintAnalyzer("obliviousflow",
		"inside enclave-resident oblivious code, per-individual data must not decide branches, bound loops, or address memory except through declared constant-time or ORAM barriers",
		reg)
}

// NewDivergentFloat reports order-nondeterministic values (map iteration,
// select races, unordered goroutine fan-in) flowing into the Table-4/Table-5
// statistics that every federation member must reproduce bit-identically,
// unless the value passed an ordering barrier (sort, indexed merge).
func NewDivergentFloat(reg *TaintRegistry) *Analyzer {
	return taintAnalyzer("divergentfloat",
		"order-nondeterministic values must pass an ordering barrier before feeding statistics that members must derive bit-identically",
		reg)
}
