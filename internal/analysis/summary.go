package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SecretClass partitions the secrets of the threat model (PAPER.md §4).
// Aggregate secrets (allele-count vectors, MAF/pair-stat vectors) are
// cohort-level statistics: they must not reach host-visible sinks in
// plaintext, but they are legitimate checkpoint content once declared.
// Per-individual secrets (genotype matrices, LR-matrix rows, key material)
// additionally may never be persisted through internal/checkpoint at all —
// even AEAD-sealed — because checkpoints outlive the enclave.
type SecretClass uint8

const (
	// ClassAggregate marks cohort-level summary statistics.
	ClassAggregate SecretClass = 1 << iota
	// ClassIndividual marks per-individual data and key material.
	ClassIndividual
	// ClassUnordered marks values whose bits depend on a scheduling or
	// iteration order Go leaves unspecified (map ranges, select races,
	// goroutine fan-in). Such values are not secret — they must simply never
	// reach a cross-member-deterministic statistic without an ordering
	// barrier. The divergentfloat analyzer owns this class.
	ClassUnordered
)

// classSecret masks the confidentiality classes: the egress and checkpoint
// sinks care about secrets, never about the determinism-only unordered bit.
const classSecret = ClassAggregate | ClassIndividual

func (c SecretClass) String() string {
	switch {
	case c&ClassIndividual != 0 && c&ClassAggregate != 0:
		return "per-individual and aggregate"
	case c&ClassIndividual != 0:
		return "per-individual"
	case c&ClassAggregate != 0:
		return "aggregate"
	case c&ClassUnordered != 0:
		return "order-nondeterministic"
	}
	return "none"
}

// taintVal is the engine's abstract value: which secret classes the value
// carries in plaintext (raw) or AEAD-protected form (sealed), plus — while a
// function is being summarized — which of its parameters the value depends
// on, raw or through a sealing declassifier.
type taintVal struct {
	raw          SecretClass
	sealed       SecretClass
	params       uint64
	sealedParams uint64
}

func (t taintVal) empty() bool {
	return t.raw == 0 && t.sealed == 0 && t.params == 0 && t.sealedParams == 0
}

func (t taintVal) union(o taintVal) taintVal {
	return taintVal{
		raw:          t.raw | o.raw,
		sealed:       t.sealed | o.sealed,
		params:       t.params | o.params,
		sealedParams: t.sealedParams | o.sealedParams,
	}
}

// sealTV demotes raw taint to sealed: the value passed through an approved
// AEAD declassifier, so it may leave the enclave — but a per-individual
// payload remains banned from checkpoints.
func (t taintVal) sealTV() taintVal {
	return taintVal{
		sealed:       t.raw | t.sealed,
		sealedParams: t.params | t.sealedParams,
	}
}

// anyClass is every class bit the value carries, raw or sealed.
func (t taintVal) anyClass() SecretClass { return t.raw | t.sealed }

// funcSummary is the transfer function of one module function: how taint
// moves from its parameters (receiver first) to its results, which
// parameters reach an egress or checkpoint sink somewhere beneath it, and
// which struct fields it taints from its parameters.
type funcSummary struct {
	nparams int
	results []taintVal

	// sinkParams: parameters whose raw taint reaches a plaintext-egress
	// sink (log, error construction, writer, unsecured transport send).
	sinkParams uint64
	sinkVia    map[int]string

	// ckptParams: parameters that reach a checkpoint sink, raw or sealed.
	ckptParams uint64
	ckptVia    map[int]string

	// obvParams: parameters that decide a branch, bound a loop, index
	// memory, size an allocation or feed a panic somewhere beneath this
	// function (outside oblivious barriers). An oblivious-scope caller
	// passing per-individual data here voids the access-pattern guarantee.
	obvParams uint64
	obvVia    map[int]string

	// ordParams: parameters that reach an order-sensitive statistic sink
	// (the Table-4/Table-5 figures that must be bit-identical across
	// members) without an ordering barrier in between.
	ordParams uint64
	ordVia    map[int]string

	// fieldWrites: parameter-relative taint flowing into struct fields.
	fieldWrites map[*types.Var]taintVal
}

func (s *funcSummary) mergeInto(dst *funcSummary) bool {
	changed := false
	for i, r := range s.results {
		if i >= len(dst.results) {
			dst.results = append(dst.results, r)
			changed = true
			continue
		}
		u := dst.results[i].union(r)
		if u != dst.results[i] {
			dst.results[i] = u
			changed = true
		}
	}
	if s.sinkParams&^dst.sinkParams != 0 {
		dst.sinkParams |= s.sinkParams
		changed = true
	}
	for k, v := range s.sinkVia {
		if _, ok := dst.sinkVia[k]; !ok {
			if dst.sinkVia == nil {
				dst.sinkVia = make(map[int]string)
			}
			dst.sinkVia[k] = v
		}
	}
	if s.ckptParams&^dst.ckptParams != 0 {
		dst.ckptParams |= s.ckptParams
		changed = true
	}
	for k, v := range s.ckptVia {
		if _, ok := dst.ckptVia[k]; !ok {
			if dst.ckptVia == nil {
				dst.ckptVia = make(map[int]string)
			}
			dst.ckptVia[k] = v
		}
	}
	if s.obvParams&^dst.obvParams != 0 {
		dst.obvParams |= s.obvParams
		changed = true
	}
	for k, v := range s.obvVia {
		if _, ok := dst.obvVia[k]; !ok {
			if dst.obvVia == nil {
				dst.obvVia = make(map[int]string)
			}
			dst.obvVia[k] = v
		}
	}
	if s.ordParams&^dst.ordParams != 0 {
		dst.ordParams |= s.ordParams
		changed = true
	}
	for k, v := range s.ordVia {
		if _, ok := dst.ordVia[k]; !ok {
			if dst.ordVia == nil {
				dst.ordVia = make(map[int]string)
			}
			dst.ordVia[k] = v
		}
	}
	for f, v := range s.fieldWrites {
		u := dst.fieldWrites[f].union(v)
		if u != dst.fieldWrites[f] {
			if dst.fieldWrites == nil {
				dst.fieldWrites = make(map[*types.Var]taintVal)
			}
			dst.fieldWrites[f] = u
			changed = true
		}
	}
	return changed
}

// funcAnalysis is one intraprocedural pass over a function body (including
// its nested function literals, which share the local taint environment so
// closure captures propagate naturally).
type funcAnalysis struct {
	eng    *taintEngine
	fd     *funcDecl
	report bool

	sig        *types.Signature
	paramIdx   map[types.Object]int
	resultIdx  map[types.Object]int
	obj        map[types.Object]taintVal
	lits       map[types.Object]*ast.FuncLit
	litReturns map[*ast.FuncLit][]ast.Expr
	sum        *funcSummary
	changed    bool

	// obvScope: the function lives in an access-pattern-critical scope and
	// is not a sanctioned barrier — per-individual taint must not steer
	// control flow or memory addressing here. obvBarrier functions skip both
	// the checks and the obvParams bookkeeping (their body IS the sanctioned
	// constant-time or ORAM primitive).
	obvScope   bool
	obvBarrier bool

	// fanIn holds the channel objects this function fans goroutine results
	// into without an index: receives from them are order-nondeterministic.
	fanIn map[types.Object]bool
}

func newFuncAnalysis(eng *taintEngine, fd *funcDecl, report bool) *funcAnalysis {
	fa := &funcAnalysis{
		eng:        eng,
		fd:         fd,
		report:     report,
		paramIdx:   make(map[types.Object]int),
		resultIdx:  make(map[types.Object]int),
		obj:        make(map[types.Object]taintVal),
		lits:       make(map[types.Object]*ast.FuncLit),
		litReturns: make(map[*ast.FuncLit][]ast.Expr),
	}
	sig := fd.fn.Type().(*types.Signature)
	fa.sig = sig
	n := 0
	if recv := sig.Recv(); recv != nil {
		fa.paramIdx[recv] = 0
		n = 1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		fa.paramIdx[sig.Params().At(i)] = n
		n++
	}
	fa.sum = &funcSummary{
		nparams: n,
		results: make([]taintVal, sig.Results().Len()),
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if v := sig.Results().At(i); v.Name() != "" {
			fa.resultIdx[v] = i
		}
	}
	// Parameters start tainted with their own bit (for the summary) —
	// concrete class taint arrives from call sites, annotations, or the
	// parameter's use of secret fields.
	for obj, i := range fa.paramIdx {
		if i < 64 {
			fa.obj[obj] = taintVal{params: 1 << i}
		}
	}
	if eng.spec.Oblivious != nil {
		fa.obvBarrier = eng.obliviousBarrier(fd.fn)
		fa.obvScope = !fa.obvBarrier && eng.obliviousScope(fd)
	}
	// Inside an oblivious scope a parameter whose static type can hold
	// per-individual data is assumed to carry it: the scope exists because
	// such data is processed there, and waiting for a concretely tainted
	// call site would leave intra-scope leaks (a branch on a genotype bit in
	// the ORAM loader) invisible when every caller lives outside the scope.
	// Reporting pass only — seeding summaries would smear concrete class
	// taint onto every caller module-wide.
	if report && fa.obvScope {
		for obj := range fa.paramIdx {
			if cls := eng.typeSecretClass(obj.Type()) & ClassIndividual; cls != 0 {
				t := fa.obj[obj]
				t.raw |= cls
				fa.obj[obj] = t
			}
		}
	}
	fa.scanFanIn()
	return fa
}

// scanFanIn finds channels this function body sends to from more than one
// unordered producer: two or more go-launched literals, or one launched
// inside a loop. Receives from such a channel observe a scheduling order Go
// does not define.
func (fa *funcAnalysis) scanFanIn() {
	body := fa.fd.decl.Body
	if body == nil {
		return
	}
	// Loop extents (including loops inside literals) decide whether a single
	// go statement stands for many goroutines.
	type span struct{ lo, hi token.Pos }
	var loops []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, span{n.Pos(), n.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.lo <= pos && pos < l.hi {
				return true
			}
		}
		return false
	}
	senders := make(map[types.Object]int)
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		weight := 1
		if inLoop(g.Pos()) {
			weight = 2
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			send, ok := m.(*ast.SendStmt)
			if !ok {
				return true
			}
			if obj := fa.chanObj(send.Chan); obj != nil {
				w := weight
				if inLoop(send.Pos()) {
					w = 2
				}
				senders[obj] += w
			}
			return true
		})
		return true
	})
	for obj, n := range senders {
		if n >= 2 {
			if fa.fanIn == nil {
				fa.fanIn = make(map[types.Object]bool)
			}
			fa.fanIn[obj] = true
		}
	}
}

// chanObj resolves a channel expression to the object anchoring it: a local
// or package variable, or the struct field it is stored in.
func (fa *funcAnalysis) chanObj(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return fa.objectOf(x)
	case *ast.SelectorExpr:
		if f := fa.fieldOf(x); f != nil {
			return f
		}
	}
	return nil
}

// run iterates the flow-insensitive walk to a local fixpoint and returns the
// resulting summary.
func (fa *funcAnalysis) run() *funcSummary {
	for iter := 0; iter < 12; iter++ {
		fa.changed = false
		fa.walk(fa.fd.decl.Body)
		if !fa.changed {
			break
		}
	}
	return fa.sum
}

func (fa *funcAnalysis) info() *types.Info { return fa.fd.pkg.Info }

// errType is the universe error interface: error values never carry taint —
// leaks into error messages are flagged where the error is constructed
// (fmt.Errorf/errors.New are sinks), so wrapping and returning errors stays
// silent.
var errType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errType)
}

// setObj unions taint into a local object, tracking convergence.
func (fa *funcAnalysis) setObj(obj types.Object, t taintVal) {
	if obj == nil || t.empty() || isErrorType(obj.Type()) {
		return
	}
	u := fa.obj[obj].union(t)
	if u != fa.obj[obj] {
		fa.obj[obj] = u
		fa.changed = true
	}
}

// walk processes every statement-level construct that moves taint and
// evaluates every call for its side effects (sinks, field writes).
func (fa *funcAnalysis) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			fa.assign(s)
		case *ast.ValueSpec:
			fa.valueSpec(s)
		case *ast.RangeStmt:
			if s.X != nil {
				t := fa.eval(s.X)
				// Iterating a map (or a fan-in channel) observes an order
				// the language does not define: the key and value pick up
				// the unordered class on top of the container's taint.
				if fa.unorderedRange(s.X) {
					t.raw |= ClassUnordered
				}
				// Over a slice, array, string or integer the key is a
				// position — metadata, not data. Map keys and channel
				// elements do carry the ranged value's taint.
				if fa.rangeKeyCarries(s.X) {
					fa.assignLHS(s.Key, t)
				}
				fa.assignLHS(s.Value, t)
			}
		case *ast.ReturnStmt:
			fa.returnStmt(s)
		case *ast.CallExpr:
			fa.eval(s)
		case *ast.IfStmt:
			fa.checkOblivious(s.Cond, "decides a branch")
		case *ast.ForStmt:
			fa.checkOblivious(s.Cond, "bounds a loop")
		case *ast.SwitchStmt:
			fa.checkOblivious(s.Tag, "decides a switch")
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						fa.checkOblivious(e, "decides a switch")
					}
				}
			}
		case *ast.SelectStmt:
			fa.selectStmt(s)
		case *ast.FuncLit:
			// The literal's parameters participate in the shared
			// environment; its body is walked by this same Inspect.
			fa.litReturns[s] = collectReturns(s)
		}
		return true
	})
}

// selectStmt marks values received in a multi-way select as unordered: which
// ready case wins is a scheduler race, so downstream statistics built from
// them can diverge across members.
func (fa *funcAnalysis) selectStmt(s *ast.SelectStmt) {
	comm := 0
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm < 2 {
		return
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if assign, ok := cc.Comm.(*ast.AssignStmt); ok {
			for _, l := range assign.Lhs {
				fa.assignLHS(l, taintVal{raw: ClassUnordered})
			}
		}
	}
}

// unorderedRange reports whether ranging over x observes an unspecified
// order: any map, or a channel multiple goroutines fan into.
func (fa *funcAnalysis) unorderedRange(x ast.Expr) bool {
	tv, ok := fa.info().Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		return true
	case *types.Chan:
		return fa.fanIn[fa.chanObj(x)]
	}
	return false
}

// checkOblivious guards one control-flow or addressing position inside an
// oblivious scope: concrete per-individual taint is a finding, parameter-
// relative taint becomes an obvParams summary bit so in-scope callers are
// flagged at the call site instead.
func (fa *funcAnalysis) checkOblivious(e ast.Expr, what string) {
	if e == nil || fa.eng.spec.Oblivious == nil || fa.obvBarrier {
		return
	}
	fa.checkObliviousTaint(e, fa.eval(e), what)
}

func (fa *funcAnalysis) checkObliviousTaint(e ast.Expr, t taintVal, what string) {
	if fa.eng.spec.Oblivious == nil || fa.obvBarrier {
		return
	}
	if t.raw&ClassIndividual == 0 && t.params == 0 {
		return
	}
	if fa.allowed("obliviousflow", e.Pos()) {
		return
	}
	if fa.obvScope && t.raw&ClassIndividual != 0 {
		fa.reportf("obliviousflow", e.Pos(),
			"per-individual data %s in oblivious code; route it through a constant-time primitive (internal/oblivious/ct) or a declared //gendpr:oblivious barrier", what)
	}
	fa.noteObv(t.params, what)
}

// collectReturns gathers the return expressions of a function literal,
// excluding returns that belong to literals nested inside it.
func collectReturns(lit *ast.FuncLit) []ast.Expr {
	var out []ast.Expr
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return s == lit
		case *ast.ReturnStmt:
			out = append(out, s.Results...)
		}
		return true
	}
	ast.Inspect(lit, visit)
	return out
}

func (fa *funcAnalysis) assign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Multi-value: every LHS receives the call/comma-ok taint.
		t := fa.eval(s.Rhs[0])
		for _, l := range s.Lhs {
			fa.assignLHS(l, t)
		}
		return
	}
	for i, l := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		t := fa.eval(s.Rhs[i])
		// Compound assignment (x += y) folds the RHS into the LHS value.
		fa.assignLHS(l, t)
		// Track local function-literal bindings for closure calls.
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if lit, ok := ast.Unparen(s.Rhs[i]).(*ast.FuncLit); ok {
				if obj := fa.objectOf(id); obj != nil {
					fa.lits[obj] = lit
				}
			}
		}
	}
}

func (fa *funcAnalysis) valueSpec(s *ast.ValueSpec) {
	if len(s.Values) == 1 && len(s.Names) > 1 {
		t := fa.eval(s.Values[0])
		for _, name := range s.Names {
			fa.setObj(fa.objectOf(name), t)
		}
		return
	}
	for i, name := range s.Names {
		if i >= len(s.Values) {
			break
		}
		t := fa.eval(s.Values[i])
		fa.setObj(fa.objectOf(name), t)
		if lit, ok := ast.Unparen(s.Values[i]).(*ast.FuncLit); ok {
			if obj := fa.objectOf(name); obj != nil {
				fa.lits[obj] = lit
			}
		}
	}
}

// assignLHS routes taint into the storage an LHS expression denotes: the
// local object, the root object of an index/deref chain, and — for field
// selectors — the module-global field fact the engine propagates.
func (fa *funcAnalysis) assignLHS(lhs ast.Expr, t taintVal) {
	if lhs == nil || t.empty() {
		return
	}
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		fa.setObj(fa.objectOf(l), t)
	case *ast.SelectorExpr:
		if fieldVar := fa.fieldOf(l); fieldVar != nil {
			fa.eng.writeField(fieldVar, t, fa)
		}
		fa.assignLHS(l.X, t)
	case *ast.IndexExpr:
		// Storing THROUGH a tainted index reveals the address just like a
		// read does.
		fa.checkObliviousTaint(l.Index, fa.eval(l.Index), "indexes memory")
		fa.assignLHS(l.X, t)
	case *ast.StarExpr:
		fa.assignLHS(l.X, t)
	}
}

func (fa *funcAnalysis) returnStmt(s *ast.ReturnStmt) {
	addResult := func(i int, t taintVal) {
		if i >= len(fa.sum.results) || t.empty() {
			return
		}
		if isErrorType(fa.sig.Results().At(i).Type()) {
			return
		}
		u := fa.sum.results[i].union(t)
		if u != fa.sum.results[i] {
			fa.sum.results[i] = u
			fa.changed = true
		}
	}
	if len(s.Results) == 0 {
		// Bare return: named results carry the taint.
		for obj, i := range fa.resultIdx {
			addResult(i, fa.obj[obj])
		}
		return
	}
	if len(s.Results) == 1 && len(fa.sum.results) > 1 {
		t := fa.eval(s.Results[0])
		for i := range fa.sum.results {
			addResult(i, t)
		}
		return
	}
	for i, r := range s.Results {
		addResult(i, fa.eval(r))
	}
}

// isNilExpr reports whether e is the predeclared nil.
func (fa *funcAnalysis) isNilExpr(e ast.Expr) bool {
	tv, ok := fa.info().Types[e]
	return ok && tv.IsNil()
}

// rangeKeyCarries reports whether the key variable of a range over x receives
// the ranged value's taint (maps and channels) or is a clean index/position
// (slices, arrays, strings, integers).
func (fa *funcAnalysis) rangeKeyCarries(x ast.Expr) bool {
	tv, ok := fa.info().Types[x]
	if !ok || tv.Type == nil {
		return true
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
		return false
	}
	return true
}

func (fa *funcAnalysis) objectOf(id *ast.Ident) types.Object {
	if obj := fa.info().Defs[id]; obj != nil {
		return obj
	}
	return fa.info().Uses[id]
}

// fieldOf resolves a selector to the struct field it denotes, nil when the
// selector is not a field access.
func (fa *funcAnalysis) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := fa.info().Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// eval computes the taint of an expression, processing any embedded calls
// for their sink and field-write side effects.
func (fa *funcAnalysis) eval(e ast.Expr) taintVal {
	switch x := e.(type) {
	case nil:
		return taintVal{}
	case *ast.Ident:
		return fa.obj[fa.objectOf(x)]
	case *ast.ParenExpr:
		return fa.eval(x.X)
	case *ast.SelectorExpr:
		if fieldVar := fa.fieldOf(x); fieldVar != nil {
			// Field reads are field-based, not object-based: the taint of
			// s.f is what has been observed flowing into f anywhere (plus
			// its annotation), not the union of everything s holds in
			// other fields. This keeps "save(s.aggregates)" clean when s
			// also carries per-individual members.
			fa.eval(x.X)
			t := fa.eng.fieldTaint[fieldVar]
			if cls, ok := fa.eng.secretFields[fieldVar]; ok {
				t = t.union(taintVal{raw: cls})
			}
			// Parameter-relative writes made by the function under
			// analysis flow back into its own reads.
			return t.union(fa.sum.fieldWrites[fieldVar])
		}
		t := fa.eval(x.X)
		if obj := fa.info().Uses[x.Sel]; obj != nil {
			// Qualified identifier (pkg.Var) or method value.
			t = t.union(fa.obj[obj])
		}
		return t
	case *ast.CallExpr:
		return fa.call(x)
	case *ast.IndexExpr:
		if tv, ok := fa.info().Types[x.Index]; ok && tv.IsType() {
			// Generic instantiation, not an element access.
			return fa.eval(x.X)
		}
		it := fa.eval(x.Index)
		fa.checkObliviousTaint(x.Index, it, "indexes memory")
		return fa.eval(x.X).union(it)
	case *ast.SliceExpr:
		for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
			if idx != nil {
				fa.checkObliviousTaint(idx, fa.eval(idx), "indexes memory")
			}
		}
		return fa.eval(x.X)
	case *ast.StarExpr:
		return fa.eval(x.X)
	case *ast.UnaryExpr:
		t := fa.eval(x.X)
		if x.Op == token.ARROW && fa.fanIn[fa.chanObj(x.X)] {
			// Receiving from a fan-in channel: arrival order is a race.
			t.raw |= ClassUnordered
		}
		return t
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			l := fa.eval(x.X)
			r := fa.eval(x.Y)
			if fa.isNilExpr(x.X) || fa.isNilExpr(x.Y) {
				// Comparing against nil observes presence, not content: a
				// `shard == nil` guard is uniform across cohorts and below
				// every analyzer's granularity.
				return taintVal{}
			}
			if x.Op == token.LAND || x.Op == token.LOR {
				// Short-circuit: evaluating the right operand is itself a
				// branch decided by the left one.
				fa.checkObliviousTaint(x.X, l, "decides a branch")
			}
			if fa.obvScope {
				// Inside oblivious scopes the one-bit predicate IS the
				// side channel: keep the per-individual component (and its
				// parameter relativity) so `ok := g == 1; if ok` and
				// branchy helper functions are still caught.
				u := l.union(r)
				return taintVal{raw: u.raw & ClassIndividual, params: u.params}
			}
			// Elsewhere a one-bit predicate is below the engine's
			// reporting granularity.
			return taintVal{}
		}
		return fa.eval(x.X).union(fa.eval(x.Y))
	case *ast.CompositeLit:
		// Struct literals record per-field taint (the field-based reads
		// above depend on it); the literal value keeps the union so a
		// whole struct passed to a sink still carries its content.
		var st *types.Struct
		if tv, ok := fa.info().Types[x]; ok && tv.Type != nil {
			under := tv.Type.Underlying()
			if p, ok := under.(*types.Pointer); ok {
				under = p.Elem().Underlying()
			}
			st, _ = under.(*types.Struct)
		}
		var t taintVal
		for i, el := range x.Elts {
			var vt taintVal
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				vt = fa.eval(kv.Value)
				if id, ok := kv.Key.(*ast.Ident); ok {
					if v, ok := fa.info().Uses[id].(*types.Var); ok && v.IsField() {
						fa.eng.writeField(v, vt, fa)
					}
				}
			} else {
				vt = fa.eval(el)
				if st != nil && i < st.NumFields() {
					fa.eng.writeField(st.Field(i), vt, fa)
				}
			}
			t = t.union(vt)
		}
		return t
	case *ast.TypeAssertExpr:
		return fa.eval(x.X)
	case *ast.FuncLit:
		fa.litReturns[x] = collectReturns(x)
		return taintVal{}
	}
	return taintVal{}
}

// litCallResult propagates a call through a locally bound function literal:
// arguments taint the literal's parameters, the result is the union of the
// literal's return expressions.
func (fa *funcAnalysis) litCallResult(lit *ast.FuncLit, args []ast.Expr) taintVal {
	if lit.Type.Params != nil {
		i := 0
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if i < len(args) {
					fa.setObj(fa.objectOf(name), fa.eval(args[i]))
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	var t taintVal
	for _, r := range fa.litReturns[lit] {
		t = t.union(fa.eval(r))
	}
	return t
}

// argTaints evaluates the receiver-and-argument expressions of a call.
func (fa *funcAnalysis) argTaints(argExprs []ast.Expr) []taintVal {
	out := make([]taintVal, len(argExprs))
	for i, a := range argExprs {
		out[i] = fa.eval(a)
	}
	return out
}

// paramTaint maps a callee parameter index onto the call-site argument
// taints, folding variadic overflow onto the last parameter.
func paramTaint(args []taintVal, nparams, i int) taintVal {
	if nparams == 0 {
		return taintVal{}
	}
	var t taintVal
	for j, a := range args {
		idx := j
		if idx >= nparams {
			idx = nparams - 1
		}
		if idx == i {
			t = t.union(a)
		}
	}
	return t
}

// instantiate resolves a parameter-relative taint value against concrete
// call-site argument taints.
func instantiate(t taintVal, args []taintVal, nparams int) taintVal {
	out := taintVal{raw: t.raw, sealed: t.sealed}
	for i := 0; i < nparams && i < 64; i++ {
		if t.params&(1<<i) != 0 {
			out = out.union(paramTaint(args, nparams, i))
		}
		if t.sealedParams&(1<<i) != 0 {
			out = out.union(paramTaint(args, nparams, i).sealTV())
		}
	}
	return out
}

// allowed reports whether a gendpr:allow directive for analyzer covers pos.
// The engine consults directives while summarizing, so a justified sink use
// does not propagate blame chains into every caller.
func (fa *funcAnalysis) allowed(analyzer string, positions ...token.Pos) bool {
	for _, pos := range positions {
		p := fa.fd.pkg.Fset.Position(pos)
		if fa.eng.sup.allows(Diagnostic{Pos: p, Analyzer: analyzer}) {
			return true
		}
	}
	return false
}

// reportf records an engine finding (only on the reporting pass).
func (fa *funcAnalysis) reportf(analyzer string, pos token.Pos, format string, args ...any) {
	if !fa.report {
		return
	}
	fa.eng.addFinding(analyzer, fa.fd.pkg, pos, fmt.Sprintf(format, args...))
}
