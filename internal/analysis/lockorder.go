package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// NewLockOrder returns the analyzer building the module-wide
// lock-acquisition-order graph and reporting cycles as potential deadlocks.
// An edge A→B is recorded whenever lock B is acquired while A is held —
// directly in one function (held-set dataflow on the CFG) or through a call
// (the PR-5 call graph supplies, for every callee, the transitive closure of
// locks it may acquire, with interface calls resolved to every in-module
// implementation). Two goroutines taking the same pair of locks in opposite
// orders is the one deadlock no timeout rescues: each holds what the other
// needs. Any strongly connected component in the order graph — including a
// self-edge, since sync.Mutex is not reentrant — is reported at every
// acquisition site participating in it.
//
// Lock identity is class-level: a mutex struct field stands for that field
// across all instances, a type embedding a mutex stands for every value of
// the type, and a plain var for itself. Class identity can merge two
// instances (hand-over-hand locking over siblings reports a cycle a runtime
// instance order would avoid) — the module has no such pattern, and a real
// one would deserve an explicit documented order anyway.
//
// One dispatch refinement keeps the decorator pattern quiet: along any one
// call path, an interface dispatch never resolves to a receiver type already
// active on that path. A type delegating to an interface field of its own
// kind (SecureConn wrapping Conn, cachedProvider wrapping Provider) would
// have to be nested inside itself — possibly through a chain of other
// decorators — for that resolution to be real, and class-level identity
// would then report every lock it holds as a self-deadlock. The may-acquire
// walk therefore carries the set of receiver types on the path and skips
// interface edges that would re-enter one; static calls are never skipped.
func NewLockOrder(scopes []Scope) *Analyzer {
	var mu sync.Mutex
	cache := make(map[*Module]*lockOrderEngine)
	a := &Analyzer{
		Name:         "lockorder",
		Doc:          "lock acquisition order must be acyclic across the module; a cycle is a potential deadlock",
		Scopes:       scopes,
		ModuleGlobal: true,
	}
	a.Run = func(p *Pass) {
		mu.Lock()
		eng := cache[p.Mod]
		if eng == nil {
			eng = buildLockOrderEngine(p.Mod)
			cache[p.Mod] = eng
		}
		mu.Unlock()
		for _, f := range eng.findings[p.Pkg.Path] {
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
	return a
}

type lockFinding struct {
	pos token.Pos
	msg string
}

// lockEdge is one "acquired while held" observation.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
	pkgPath  string
	via      *types.Func // non-nil when the acquisition happens inside a callee
}

type lockOrderEngine struct {
	findings map[string][]lockFinding
}

func buildLockOrderEngine(mod *Module) *lockOrderEngine {
	eng := &lockOrderEngine{findings: make(map[string][]lockFinding)}
	cg := buildCallGraph(mod)

	// Deterministic function order: the maps inside callGraph iterate
	// randomly, and edge discovery order decides which duplicate wins.
	fns := make([]*types.Func, 0, len(cg.funcs))
	for fn := range cg.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return cg.name(fns[i]) < cg.name(fns[j]) })

	// Phase 1: per-function direct acquisitions and callee edges (tagged with
	// how the call dispatches, for the decorator refinement).
	direct := make(map[*types.Func][]types.Object)
	callees := make(map[*types.Func][]calleeEdge)
	for _, fn := range fns {
		fd := cg.funcs[fn]
		scanFuncLocks(fd, cg, direct, callees)
	}

	// Phase 2: held-set dataflow over each function's CFG.
	var edges []lockEdge
	seen := make(map[string]bool)
	for _, fn := range fns {
		fd := cg.funcs[fn]
		for _, e := range functionLockEdges(fd, cg, direct, callees) {
			key := fmt.Sprintf("%p|%p|%d", e.from, e.to, e.pos)
			if !seen[key] {
				seen[key] = true
				edges = append(edges, e)
			}
		}
	}

	// Phase 3: cycles. Every edge inside a strongly connected component of
	// size > 1, and every self-edge, is a finding at its site.
	inCycle := cyclicNodes(edges)
	label := func(obj types.Object) string {
		return fmt.Sprintf("%s (%s)", obj.Name(), mod.Fset.Position(obj.Pos()))
	}
	for _, e := range edges {
		var msg string
		switch {
		case e.from == e.to:
			msg = fmt.Sprintf("lock %s is acquired while a lock of the same identity is already held: sync mutexes are not reentrant — self-deadlock, or two instances needing an explicit documented order", label(e.from))
		case inCycle[e.from] && inCycle[e.to]:
			if e.via != nil {
				msg = fmt.Sprintf("call may acquire %s (via %s) while %s is held: the acquisition order cycles elsewhere in the module — potential deadlock; establish one module-wide order", label(e.to), e.via.Name(), label(e.from))
			} else {
				msg = fmt.Sprintf("acquiring %s while %s is held creates a lock-order cycle: another path takes them in the opposite order — potential deadlock; establish one module-wide order", label(e.to), label(e.from))
			}
		default:
			continue
		}
		eng.findings[e.pkgPath] = append(eng.findings[e.pkgPath], lockFinding{pos: e.pos, msg: msg})
	}
	return eng
}

// lockOp is one ordered event inside a function body.
type lockOp struct {
	kind    int // opLock, opUnlock, opCall
	obj     types.Object
	pos     token.Pos
	callees []*types.Func
}

const (
	opLock = iota
	opUnlock
	opCall
)

// calleeEdge is one call-graph edge with its dispatch mode: viaIface marks a
// resolution through interface may-dispatch, which the decorator refinement
// is allowed to prune; static edges are always followed.
type calleeEdge struct {
	g        *types.Func
	viaIface bool
}

// scanFuncLocks fills the function's direct-acquire set and callee list.
// Function literals are skipped throughout the analyzer: they run on their
// own goroutine's schedule (or are invoked through a value the call graph
// cannot resolve), so attributing their locks to the enclosing held set
// would fabricate edges.
func scanFuncLocks(fd *funcDecl, cg *callGraph, direct map[*types.Func][]types.Object, callees map[*types.Func][]calleeEdge) {
	seenAcq := make(map[types.Object]bool)
	seenCallee := make(map[*types.Func]bool)
	inspectSkippingFuncLits(fd.decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if obj, kind := mutexOp(fd.pkg, call); obj != nil {
			if kind == opLock && !seenAcq[obj] {
				seenAcq[obj] = true
				direct[fd.fn] = append(direct[fd.fn], obj)
			}
			return
		}
		static, impls := cg.callee(fd.pkg, call)
		if static != nil && cg.funcs[static] != nil && !seenCallee[static] {
			seenCallee[static] = true
			callees[fd.fn] = append(callees[fd.fn], calleeEdge{g: static})
		}
		for _, g := range impls {
			if g == nil || cg.funcs[g] == nil || seenCallee[g] {
				continue
			}
			seenCallee[g] = true
			callees[fd.fn] = append(callees[fd.fn], calleeEdge{g: g, viaIface: true})
		}
	})
}

func inspectSkippingFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		visit(n)
		return true
	})
}

// mutexOp classifies a call as Lock/RLock or Unlock/RUnlock on a mutex and
// returns the lock's class-level identity object.
func mutexOp(pkg *Package, call *ast.CallExpr) (types.Object, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil, 0
	}
	var kind int
	switch {
	case lockMethods[sel.Sel.Name]:
		kind = opLock
	case unlockMethods[sel.Sel.Name]:
		kind = opUnlock
	default:
		return nil, 0
	}
	if pkg.Info == nil {
		return nil, 0
	}
	// The receiver must actually be a sync mutex (or embed one).
	var recv types.Type
	if s, ok := pkg.Info.Selections[sel]; ok {
		recv = s.Recv()
	} else if tv, ok := pkg.Info.Types[sel.X]; ok {
		recv = tv.Type
	}
	if recv == nil || !isSyncMutex(recv) {
		return nil, 0
	}
	return lockIdentity(pkg, sel.X, recv), kind
}

// lockIdentity maps a mutex receiver expression to its class-level object:
// a struct field (`s.mu` → the mu field, shared by all instances), the named
// type for embedded promotion (`s.Lock()` → the type of s), or the variable
// itself for plain vars.
func lockIdentity(pkg *Package, recvExpr ast.Expr, recvType types.Type) types.Object {
	switch e := ast.Unparen(recvExpr).(type) {
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[e]; ok {
			return s.Obj()
		}
		return pkg.Info.Uses[e.Sel]
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if obj == nil {
			return nil
		}
		// A method promoted from an embedded mutex: identify by the named
		// receiver type, so every method of the type shares the lock class.
		t := recvType
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
				return named.Obj()
			}
		}
		return obj
	}
	return nil
}

// collectAcquires accumulates into out every lock fn may acquire directly or
// through in-module calls, walking the call graph path-sensitively: an
// interface-dispatch edge whose target's receiver type is already active on
// the current path is skipped (the decorator refinement — a value is never
// nested inside itself), and recursion is cut at functions already on the
// stack. activeTypes and onStack follow stack discipline across the walk.
func collectAcquires(fn *types.Func, direct map[*types.Func][]types.Object, callees map[*types.Func][]calleeEdge, activeTypes map[*types.TypeName]bool, onStack map[*types.Func]bool, out map[types.Object]bool) {
	if onStack[fn] {
		return
	}
	onStack[fn] = true
	self := receiverNamed(fn)
	pushed := self != nil && !activeTypes[self]
	if pushed {
		activeTypes[self] = true
	}
	for _, o := range direct[fn] {
		out[o] = true
	}
	for _, ce := range callees[fn] {
		if ce.viaIface {
			if r := receiverNamed(ce.g); r != nil && activeTypes[r] {
				continue
			}
		}
		collectAcquires(ce.g, direct, callees, activeTypes, onStack, out)
	}
	if pushed {
		delete(activeTypes, self)
	}
	delete(onStack, fn)
}

// functionLockEdges runs the held-set dataflow over one function's CFG: a
// DFS carrying the set of locks held, memoized on (block, held-set) so loops
// converge. Deferred unlocks keep the lock held for the rest of the function
// (that is exactly how long the runtime holds it).
func functionLockEdges(fd *funcDecl, cg *callGraph, direct map[*types.Func][]types.Object, callees map[*types.Func][]calleeEdge) []lockEdge {
	body := fd.decl.Body
	hasLockOps := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if hasLockOps {
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj, _ := mutexOp(fd.pkg, call); obj != nil {
				hasLockOps = true
			}
		}
	})
	if !hasLockOps {
		return nil
	}

	cfg := BuildCFG(body)
	var edges []lockEdge
	// Stable ints for held-set memo keys.
	objIDs := make(map[types.Object]int)
	idOf := func(o types.Object) int {
		if id, ok := objIDs[o]; ok {
			return id
		}
		id := len(objIDs)
		objIDs[o] = id
		return id
	}
	heldKey := func(held map[types.Object]bool) string {
		ids := make([]int, 0, len(held))
		for o := range held {
			ids = append(ids, idOf(o))
		}
		sort.Ints(ids)
		return fmt.Sprint(ids)
	}
	emit := func(held map[types.Object]bool, to types.Object, pos token.Pos, via *types.Func) {
		for from := range held {
			edges = append(edges, lockEdge{from: from, to: to, pos: pos, pkgPath: fd.pkg.Path, via: via})
		}
	}
	// Path-sensitive may-acquire sets for callees, seeded with this
	// function's own receiver type so a callee's interface dispatch cannot
	// resolve back into the type we are analyzing. Memoized per callee — the
	// seed is fixed for the whole function.
	acqMemo := make(map[*types.Func]map[types.Object]bool)
	acquiresOf := func(g *types.Func) map[types.Object]bool {
		if set, ok := acqMemo[g]; ok {
			return set
		}
		set := make(map[types.Object]bool)
		active := make(map[*types.TypeName]bool)
		if self := receiverNamed(fd.fn); self != nil {
			active[self] = true
		}
		collectAcquires(g, direct, callees, active, make(map[*types.Func]bool), set)
		acqMemo[g] = set
		return set
	}

	visited := make(map[string]bool)
	var walk func(blk *Block, held map[types.Object]bool)
	walk = func(blk *Block, held map[types.Object]bool) {
		key := fmt.Sprintf("%d|%s", blk.Index, heldKey(held))
		if visited[key] {
			return
		}
		visited[key] = true
		cur := make(map[types.Object]bool, len(held))
		for o := range held {
			cur[o] = true
		}
		for _, n := range blk.Nodes {
			for _, op := range nodeLockOps(fd, cg, n) {
				switch op.kind {
				case opLock:
					emit(cur, op.obj, op.pos, nil)
					cur[op.obj] = true
				case opUnlock:
					delete(cur, op.obj)
				case opCall:
					if len(cur) == 0 {
						continue
					}
					for _, g := range op.callees {
						for to := range acquiresOf(g) {
							emit(cur, to, op.pos, g)
						}
					}
				}
			}
		}
		for _, succ := range blk.Succs {
			walk(succ, cur)
		}
	}
	walk(cfg.Entry, make(map[types.Object]bool))

	// Deterministic edge order independent of map iteration inside emit.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].pos != edges[j].pos {
			return edges[i].pos < edges[j].pos
		}
		if edges[i].from.Pos() != edges[j].from.Pos() {
			return edges[i].from.Pos() < edges[j].from.Pos()
		}
		return edges[i].to.Pos() < edges[j].to.Pos()
	})
	return edges
}

// nodeLockOps lists the lock-relevant events of one CFG node in source
// order. A DeferStmt's unlock is dropped entirely: the lock stays held until
// function exit. Its lock (rare) is ignored too — it would happen at exit.
func nodeLockOps(fd *funcDecl, cg *callGraph, n ast.Node) []lockOp {
	if _, ok := n.(*ast.DeferStmt); ok {
		return nil
	}
	var ops []lockOp
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if obj, kind := mutexOp(fd.pkg, m); obj != nil {
				ops = append(ops, lockOp{kind: kind, obj: obj, pos: m.Pos()})
				return true
			}
			if gs := resolvedCallees(fd, cg, m); len(gs) > 0 {
				ops = append(ops, lockOp{kind: opCall, pos: m.Pos(), callees: gs})
			}
		}
		return true
	})
	return ops
}

// resolvedCallees lists the in-module functions a call may reach, applying
// the decorator refinement: interface impls on the calling method's own
// receiver type are dropped (see the analyzer doc).
func resolvedCallees(fd *funcDecl, cg *callGraph, call *ast.CallExpr) []*types.Func {
	static, impls := cg.callee(fd.pkg, call)
	self := receiverNamed(fd.fn)
	var gs []*types.Func
	if static != nil && cg.funcs[static] != nil {
		gs = append(gs, static)
	}
	for _, g := range impls {
		if g == nil || cg.funcs[g] == nil {
			continue
		}
		if self != nil && receiverNamed(g) == self {
			continue
		}
		gs = append(gs, g)
	}
	return gs
}

// receiverNamed returns the defining *types.TypeName of fn's receiver type,
// nil for plain functions.
func receiverNamed(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// cyclicNodes returns the lock objects inside some strongly connected
// component of size > 1 (Tarjan); self-edges are handled separately by the
// caller.
func cyclicNodes(edges []lockEdge) map[types.Object]bool {
	adj := make(map[types.Object][]types.Object)
	nodes := make(map[types.Object]bool)
	for _, e := range edges {
		nodes[e.from], nodes[e.to] = true, true
		if e.from != e.to {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	var order []types.Object
	for n := range nodes {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })

	index := make(map[types.Object]int)
	low := make(map[types.Object]int)
	onStack := make(map[types.Object]bool)
	var stack []types.Object
	next := 0
	inCycle := make(map[types.Object]bool)

	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					inCycle[w] = true
				}
			}
		}
	}
	for _, v := range order {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return inCycle
}
