package analysis

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts expectations of the form: want "substring"
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// fixtureExpectations scans a fixture directory's Go files for // want
// comments, keyed by file:line.
func fixtureExpectations(t *testing.T, dir string) map[string][]string {
	t.Helper()
	want := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				key := fmt.Sprintf("%s:%d", path, line)
				want[key] = append(want[key], m[1])
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return want
}

// runFixture lints one testdata package with one analyzer and compares the
// diagnostics against the // want expectations, both directions.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadPackageDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	diags := Run(mod, []*Analyzer{a})

	want := fixtureExpectations(t, dir)
	matched := make(map[string]int)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range want[key] {
			if strings.Contains(d.Message, w) {
				found = true
				matched[key]++
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range want {
		if matched[key] < len(ws) {
			t.Errorf("%s: expected diagnostic(s) %q not reported", key, ws)
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s has no // want expectations; it would pass vacuously", name)
	}
}

func fixtureScope(name string) []Scope {
	return []Scope{{PathPrefix: "fixture/" + name}}
}

func TestCryptoRandFixture(t *testing.T) {
	runFixture(t, NewCryptoRand(fixtureScope("cryptorand")), "cryptorand")
}

func TestLockAcrossSendFixture(t *testing.T) {
	runFixture(t, NewLockAcrossSend(nil), "lockacrosssend")
}

func TestFloatEqFixture(t *testing.T) {
	runFixture(t, NewFloatEq(nil), "floateq")
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, NewErrDrop(nil), "errdrop")
}

func TestWGMisuseFixture(t *testing.T) {
	runFixture(t, NewWGMisuse(nil), "wgmisuse")
}

func TestNakedRecvFixture(t *testing.T) {
	runFixture(t, NewNakedRecv(nil), "nakedrecv")
}

func TestCtxDeadlineFixture(t *testing.T) {
	runFixture(t, NewCtxDeadline(nil), "ctxdeadline")
}

func TestGoroLeakFixture(t *testing.T) {
	runFixture(t, NewGoroLeak(nil), "goroleak")
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, NewLockOrder(nil), "lockorder")
}

func TestMustReleaseFixture(t *testing.T) {
	// The fixture cannot import the real transport package, so the test
	// registers the fixture's own acquire function alongside the built-in
	// pairs.
	pairs := append(DefaultReleasePairs(), ReleasePair{
		Fn: "fixture/mustrelease.acquire", Result: 0, Release: "Close", Kind: "fixture resource",
	})
	runFixture(t, NewMustRelease(nil, pairs), "mustrelease")
}

func TestSecretFlowFixture(t *testing.T) {
	runFixture(t, NewSecretFlow(NewTaintRegistry(DefaultTaintSpec())), "secretflow")
}

func TestLogLeakFixture(t *testing.T) {
	runFixture(t, NewLogLeak(NewTaintRegistry(DefaultTaintSpec())), "logleak")
}

func TestCheckpointPlainFixture(t *testing.T) {
	// The fixture cannot import the real checkpoint package, so the test
	// registers the fixture's own persistence function as the checkpoint
	// sink and adds the fixture package to the structural scan.
	spec := DefaultTaintSpec()
	spec.Sinks["fixture/checkpointplain.saveState"] = SinkSpec{Kind: "a checkpoint (saveState)", ConnArg: -1, Checkpoint: true}
	spec.CheckpointStructPkgs = append(spec.CheckpointStructPkgs, "fixture/checkpointplain")
	runFixture(t, NewCheckpointPlain(NewTaintRegistry(spec)), "checkpointplain")
}

func TestObliviousFlowFixture(t *testing.T) {
	// The fixture package stands in for the access-pattern-critical scope.
	// No Barriers table entries: ctSelect/ctEq earn barrier status purely
	// through their //gendpr:oblivious annotations.
	spec := DefaultTaintSpec()
	spec.Oblivious = &ObliviousSpec{Scopes: []Scope{{PathPrefix: "fixture/obliviousflow"}}}
	runFixture(t, NewObliviousFlow(NewTaintRegistry(spec)), "obliviousflow")
}

func TestDivergentFloatFixture(t *testing.T) {
	// The fixture cannot import the real stats package, so the test
	// registers the fixture's own statistic as an order-sensitive sink.
	spec := DefaultTaintSpec()
	spec.OrderSinks["fixture/divergentfloat.statMAF"] = "statMAF (fixture statistic)"
	runFixture(t, NewDivergentFloat(NewTaintRegistry(spec)), "divergentfloat")
}

// TestScopeExcludesOtherPackages: an analyzer scoped elsewhere must not
// fire on the fixture.
func TestScopeExcludesOtherPackages(t *testing.T) {
	dir := filepath.Join("testdata", "src", "cryptorand")
	pkg, err := LoadPackageDir(dir, "fixture/cryptorand")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	a := NewCryptoRand([]Scope{{PathPrefix: "fixture/otherpkg"}})
	if diags := Run(mod, []*Analyzer{a}); len(diags) != 0 {
		t.Fatalf("out-of-scope analyzer reported %v", diags)
	}
}

func TestScopeMatching(t *testing.T) {
	cases := []struct {
		scope Scope
		pkg   string
		base  string
		want  bool
	}{
		{Scope{PathPrefix: "a/b"}, "a/b", "x.go", true},
		{Scope{PathPrefix: "a/b"}, "a/b/c", "x.go", true},
		{Scope{PathPrefix: "a/b"}, "a/bc", "x.go", false},
		{Scope{PathPrefix: "a/b", Files: []string{"y.go"}}, "a/b", "x.go", false},
		{Scope{PathPrefix: "a/b", Files: []string{"x.go"}}, "a/b", "x.go", true},
	}
	for _, c := range cases {
		if got := c.scope.matches(c.pkg, c.base); got != c.want {
			t.Errorf("%+v.matches(%q, %q) = %v, want %v", c.scope, c.pkg, c.base, got, c.want)
		}
	}
}

// TestMalformedDirective: an allow directive without a justification is
// itself a finding.
func TestMalformedDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

func f(a, b float64) bool {
	//gendpr:allow(floateq)
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadPackageDir(dir, "fixture/malformed")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	diags := Run(mod, []*Analyzer{NewFloatEq(nil)})
	var directive, floateq bool
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive = true
		case "floateq":
			floateq = true
		}
	}
	if !directive {
		t.Error("missing-justification directive not reported")
	}
	if !floateq {
		t.Error("reasonless directive must not suppress the finding")
	}
}

// TestJustifiedDirectiveSuppresses: with a reason, the finding on the next
// line is silenced.
func TestJustifiedDirectiveSuppresses(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

func f(a, b float64) bool {
	//gendpr:allow(floateq): fixture proves bitwise identity is intended here
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadPackageDir(dir, "fixture/justified")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	if diags := Run(mod, []*Analyzer{NewFloatEq(nil)}); len(diags) != 0 {
		t.Fatalf("justified directive did not suppress: %v", diags)
	}
}

// TestLoadModuleSelf loads the real repository and checks the loader's
// basic guarantees: the module path resolves, dependency order holds, and
// the privacy-critical packages type-check (analyzers rely on their type
// information, so silent degradation there would weaken the gate).
func TestLoadModuleSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "gendpr" {
		t.Fatalf("module path %q", mod.Path)
	}
	index := make(map[string]int)
	for i, p := range mod.Packages {
		index[p.Path] = i
	}
	for _, need := range []string{"gendpr/internal/oram", "gendpr/internal/transport", "gendpr/internal/federation", "gendpr/internal/analysis"} {
		if _, ok := index[need]; !ok {
			t.Errorf("package %s not loaded", need)
		}
	}
	if index["gendpr/internal/federation"] < index["gendpr/internal/transport"] {
		t.Error("dependency order violated: federation before transport")
	}
	for _, p := range mod.Packages {
		switch p.Path {
		case "gendpr/internal/oram", "gendpr/internal/transport", "gendpr/internal/federation",
			"gendpr/internal/stats", "gendpr/internal/lrtest", "gendpr/internal/core":
			if len(p.TypeErrors) > 0 {
				t.Errorf("%s has type errors: %v", p.Path, p.TypeErrors[0])
			}
		}
	}
}

// TestDefaultSuiteCleanOnTree is the in-test version of the CI gate:
// the default analyzers report nothing on the current repository.
func TestDefaultSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(mod, DefaultAnalyzers()) {
		t.Errorf("finding on clean tree: %s", d)
	}
}

// TestBareDirectiveIsFinding: "//gendpr:allow" with no analyzer list is
// malformed and must itself be reported, not silently ignored.
func TestBareDirectiveIsFinding(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

func f(a, b float64) bool {
	//gendpr:allow
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadPackageDir(dir, "fixture/bare")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	diags := Run(mod, []*Analyzer{NewFloatEq(nil)})
	var directive, floateq bool
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive = true
		case "floateq":
			floateq = true
		}
	}
	if !directive {
		t.Error("bare //gendpr:allow not reported as a malformed directive")
	}
	if !floateq {
		t.Error("bare directive must not suppress the finding")
	}
}

// TestMultiAnalyzerDirective: one directive can name several analyzers; it
// silences exactly those and leaves others firing.
func TestMultiAnalyzerDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

//gendpr:allow(cryptorand,floateq): fixture exercises a multi-analyzer directive
import "math/rand"

func both(a float64) bool {
	//gendpr:allow(cryptorand,floateq): fixture exercises a multi-analyzer directive
	return a == rand.Float64()
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadPackageDir(dir, "fixture/multi")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	analyzers := []*Analyzer{
		NewFloatEq(nil),
		NewCryptoRand([]Scope{{PathPrefix: "fixture/multi"}}),
	}
	if diags := Run(mod, analyzers); len(diags) != 0 {
		t.Errorf("multi-analyzer directives did not suppress everything: %v", diags)
	}

	// The same package with a directive naming only floateq must keep the
	// cryptorand finding.
	dir2 := t.TempDir()
	src2 := `package fixture

//gendpr:allow(floateq): only the comparison rule is acknowledged here
import "math/rand"

func one(a float64) bool {
	//gendpr:allow(floateq): only the comparison rule is acknowledged here
	return a == rand.Float64()
}
`
	if err := os.WriteFile(filepath.Join(dir2, "f.go"), []byte(src2), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg2, err := LoadPackageDir(dir2, "fixture/multi")
	if err != nil {
		t.Fatal(err)
	}
	mod2 := &Module{Path: "fixture", Dir: dir2, Fset: pkg2.Fset, Packages: []*Package{pkg2}}
	var crand bool
	for _, d := range Run(mod2, analyzers) {
		if d.Analyzer == "floateq" {
			t.Errorf("floateq finding survived its directive: %s", d)
		}
		if d.Analyzer == "cryptorand" {
			crand = true
		}
	}
	if !crand {
		t.Error("directive naming only floateq must leave the cryptorand finding")
	}
}

// TestDirectiveDoesNotReachTwoLinesDown: binding is own line or the line
// directly below — never further.
func TestDirectiveDoesNotReachTwoLinesDown(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

func f(a, b float64) bool {
	//gendpr:allow(floateq): the directive is two lines above the comparison
	_ = a
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadPackageDir(dir, "fixture/fardirective")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	diags := Run(mod, []*Analyzer{NewFloatEq(nil)})
	var floateq bool
	for _, d := range diags {
		if d.Analyzer == "floateq" {
			floateq = true
		}
	}
	if !floateq {
		t.Error("a directive two lines above the finding must not suppress it")
	}
}

// TestLoadModuleNoGoMod: a directory outside any module fails fast with the
// ErrNoModule sentinel (gendpr-lint maps it to exit status 2).
func TestLoadModuleNoGoMod(t *testing.T) {
	_, err := LoadModule(t.TempDir())
	if !errors.Is(err, ErrNoModule) {
		t.Fatalf("want ErrNoModule, got %v", err)
	}
}

// TestLoadModuleVerboseTiming: the verbose loader reports one timing line
// per package.
func TestLoadModuleVerboseTiming(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixture/timing\n",
		"a.go":   "package timing\n\nfunc A() int { return 1 }\n",
		"b/b.go": "package b\n\nfunc B() int { return 2 }\n",
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	mod, err := LoadModuleVerbose(dir, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, p := range mod.Packages {
		if !strings.Contains(out, p.Path) {
			t.Errorf("no timing line for %s in:\n%s", p.Path, out)
		}
	}
	if !strings.Contains(out, "ms") {
		t.Errorf("timing lines carry no duration:\n%s", out)
	}
}
