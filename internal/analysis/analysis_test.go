package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts expectations of the form: want "substring"
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// fixtureExpectations scans a fixture directory's Go files for // want
// comments, keyed by file:line.
func fixtureExpectations(t *testing.T, dir string) map[string][]string {
	t.Helper()
	want := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				key := fmt.Sprintf("%s:%d", path, line)
				want[key] = append(want[key], m[1])
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return want
}

// runFixture lints one testdata package with one analyzer and compares the
// diagnostics against the // want expectations, both directions.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadPackageDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	diags := Run(mod, []*Analyzer{a})

	want := fixtureExpectations(t, dir)
	matched := make(map[string]int)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range want[key] {
			if strings.Contains(d.Message, w) {
				found = true
				matched[key]++
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range want {
		if matched[key] < len(ws) {
			t.Errorf("%s: expected diagnostic(s) %q not reported", key, ws)
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s has no // want expectations; it would pass vacuously", name)
	}
}

func fixtureScope(name string) []Scope {
	return []Scope{{PathPrefix: "fixture/" + name}}
}

func TestCryptoRandFixture(t *testing.T) {
	runFixture(t, NewCryptoRand(fixtureScope("cryptorand")), "cryptorand")
}

func TestLockAcrossSendFixture(t *testing.T) {
	runFixture(t, NewLockAcrossSend(nil), "lockacrosssend")
}

func TestFloatEqFixture(t *testing.T) {
	runFixture(t, NewFloatEq(nil), "floateq")
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, NewErrDrop(nil), "errdrop")
}

func TestWGMisuseFixture(t *testing.T) {
	runFixture(t, NewWGMisuse(nil), "wgmisuse")
}

func TestNakedRecvFixture(t *testing.T) {
	runFixture(t, NewNakedRecv(nil), "nakedrecv")
}

func TestCtxDeadlineFixture(t *testing.T) {
	runFixture(t, NewCtxDeadline(nil), "ctxdeadline")
}

// TestScopeExcludesOtherPackages: an analyzer scoped elsewhere must not
// fire on the fixture.
func TestScopeExcludesOtherPackages(t *testing.T) {
	dir := filepath.Join("testdata", "src", "cryptorand")
	pkg, err := LoadPackageDir(dir, "fixture/cryptorand")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	a := NewCryptoRand([]Scope{{PathPrefix: "fixture/otherpkg"}})
	if diags := Run(mod, []*Analyzer{a}); len(diags) != 0 {
		t.Fatalf("out-of-scope analyzer reported %v", diags)
	}
}

func TestScopeMatching(t *testing.T) {
	cases := []struct {
		scope Scope
		pkg   string
		base  string
		want  bool
	}{
		{Scope{PathPrefix: "a/b"}, "a/b", "x.go", true},
		{Scope{PathPrefix: "a/b"}, "a/b/c", "x.go", true},
		{Scope{PathPrefix: "a/b"}, "a/bc", "x.go", false},
		{Scope{PathPrefix: "a/b", Files: []string{"y.go"}}, "a/b", "x.go", false},
		{Scope{PathPrefix: "a/b", Files: []string{"x.go"}}, "a/b", "x.go", true},
	}
	for _, c := range cases {
		if got := c.scope.matches(c.pkg, c.base); got != c.want {
			t.Errorf("%+v.matches(%q, %q) = %v, want %v", c.scope, c.pkg, c.base, got, c.want)
		}
	}
}

// TestMalformedDirective: an allow directive without a justification is
// itself a finding.
func TestMalformedDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

func f(a, b float64) bool {
	//gendpr:allow(floateq)
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadPackageDir(dir, "fixture/malformed")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	diags := Run(mod, []*Analyzer{NewFloatEq(nil)})
	var directive, floateq bool
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive = true
		case "floateq":
			floateq = true
		}
	}
	if !directive {
		t.Error("missing-justification directive not reported")
	}
	if !floateq {
		t.Error("reasonless directive must not suppress the finding")
	}
}

// TestJustifiedDirectiveSuppresses: with a reason, the finding on the next
// line is silenced.
func TestJustifiedDirectiveSuppresses(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

func f(a, b float64) bool {
	//gendpr:allow(floateq): fixture proves bitwise identity is intended here
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadPackageDir(dir, "fixture/justified")
	if err != nil {
		t.Fatal(err)
	}
	mod := &Module{Path: "fixture", Dir: dir, Fset: pkg.Fset, Packages: []*Package{pkg}}
	if diags := Run(mod, []*Analyzer{NewFloatEq(nil)}); len(diags) != 0 {
		t.Fatalf("justified directive did not suppress: %v", diags)
	}
}

// TestLoadModuleSelf loads the real repository and checks the loader's
// basic guarantees: the module path resolves, dependency order holds, and
// the privacy-critical packages type-check (analyzers rely on their type
// information, so silent degradation there would weaken the gate).
func TestLoadModuleSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "gendpr" {
		t.Fatalf("module path %q", mod.Path)
	}
	index := make(map[string]int)
	for i, p := range mod.Packages {
		index[p.Path] = i
	}
	for _, need := range []string{"gendpr/internal/oram", "gendpr/internal/transport", "gendpr/internal/federation", "gendpr/internal/analysis"} {
		if _, ok := index[need]; !ok {
			t.Errorf("package %s not loaded", need)
		}
	}
	if index["gendpr/internal/federation"] < index["gendpr/internal/transport"] {
		t.Error("dependency order violated: federation before transport")
	}
	for _, p := range mod.Packages {
		switch p.Path {
		case "gendpr/internal/oram", "gendpr/internal/transport", "gendpr/internal/federation",
			"gendpr/internal/stats", "gendpr/internal/lrtest", "gendpr/internal/core":
			if len(p.TypeErrors) > 0 {
				t.Errorf("%s has type errors: %v", p.Path, p.TypeErrors[0])
			}
		}
	}
}

// TestDefaultSuiteCleanOnTree is the in-test version of the CI gate:
// the default analyzers report nothing on the current repository.
func TestDefaultSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(mod, DefaultAnalyzers()) {
		t.Errorf("finding on clean tree: %s", d)
	}
}
