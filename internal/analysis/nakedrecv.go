package analysis

import (
	"go/ast"
	"go/types"
)

// NewNakedRecv returns the analyzer flagging direct Conn.Recv calls in the
// federation middleware. A naked receive waits forever on a peer: a crashed
// or partitioned member wedges the leader (and vice versa) with no way to
// retry, degrade to a quorum, or even report which member stalled. All
// federation receives must go through the deadline-aware wrappers
// (transport.RecvDeadline, or helpers built on it) so every wait is bounded
// by the configured RPC or idle timeout. The transport package itself is out
// of scope — it is where the wrappers live.
//
// The check is syntactic with type-aware refinement: a niladic .Recv() call
// is flagged unless type information resolves the method to a signature that
// is not a message receive (two results ending in error).
func NewNakedRecv(scopes []Scope) *Analyzer {
	a := &Analyzer{
		Name:   "nakedrecv",
		Doc:    "federation code must not call Conn.Recv directly; use the deadline-aware transport.RecvDeadline so a silent peer cannot block forever",
		Scopes: scopes,
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Recv" {
					return true
				}
				if !recvLooksLikeConn(p, sel) {
					return true
				}
				p.Reportf(call.Pos(),
					"direct %s.Recv() waits forever on a silent peer; use transport.RecvDeadline so the wait is bounded by the configured timeout",
					types.ExprString(sel.X))
				return true
			})
		}
	}
	return a
}

// recvLooksLikeConn reports whether the selected Recv method plausibly is a
// message-connection receive. Without type information it conservatively says
// yes; with it, the method must return exactly (message, error).
func recvLooksLikeConn(p *Pass, sel *ast.SelectorExpr) bool {
	if p.Pkg.Info == nil {
		return true
	}
	s, ok := p.Pkg.Info.Selections[sel]
	if !ok {
		// Package-level function or unresolved selector: only methods on a
		// value are connection receives.
		tv, ok := p.Pkg.Info.Types[sel.X]
		return ok && tv.IsValue()
	}
	sig, ok := s.Type().(*types.Signature)
	if !ok {
		return true
	}
	res := sig.Results()
	if res.Len() != 2 {
		return false
	}
	named, ok := res.At(1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error"
}
