package analysis

// The incremental lint cache makes warm gendpr-lint runs proportional to
// what changed. The dominant cost of a cold run is type-checking the module
// (go/importer's source importer recompiles the standard library slice the
// module touches); re-running it when nothing changed buys nothing, so the
// cache persists each package's post-suppression findings keyed by content
// hashes and skips LoadModule entirely when every key hits.
//
// Keys are built without type-checking: a cheap walk reads every non-test Go
// file, hashes its bytes, and parses imports only. A package's key covers
// its own files plus, transitively, the keys of the intra-module packages it
// imports — editing a dependency invalidates every package in its importer
// cone, because exported types and summaries flow downstream. Analyzers
// marked ModuleGlobal (the taint suite, lockorder) see the whole module
// through one shared engine, so their entries are additionally keyed on the
// module-wide hash: any edit anywhere re-runs them everywhere. Each package
// therefore has two cache entries — the local half (per-package analyzers
// plus directive diagnostics, which are file-local) and the global half.
//
// Entries store findings after suppression filtering. That is sound because
// //gendpr:allow directives live in the same files the key hashes: a
// directive edit changes the package key and both halves re-run. A warm run
// with every entry present reproduces the cold run's diagnostics exactly
// (positions are stored relative to the module root and rebuilt on load),
// which scripts/check.sh enforces by diffing cold and warm -json reports.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// cacheSchema versions the entry format and the analyzer semantics baked
// into cached results. Bump it whenever an analyzer's behavior changes in a
// way the content hash cannot see (new rules, changed messages).
const cacheSchema = "gendpr-lint-1"

// CacheStats summarizes one RunWithCache execution.
type CacheStats struct {
	// Hits and Misses count cache entries (two per package: the local and
	// the module-global halves of the suite, when both halves are selected).
	Hits, Misses int
	// FullHit reports that every entry was served from the cache and the
	// module was never parsed or type-checked.
	FullHit bool
}

// cachedDiag is one finding at rest. File is relative to the module root so
// a cache directory survives a checkout move.
type cachedDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// cacheEntry is one package-half's stored result.
type cacheEntry struct {
	Schema   string       `json:"schema"`
	Package  string       `json:"package"`
	Findings []cachedDiag `json:"findings"`
}

// cachePkg is one package as the key walk sees it: path, directory, and the
// content key covering its files and its intra-module dependency cone.
type cachePkg struct {
	path string
	dir  string
	key  string
}

type cacheKeys struct {
	pkgs      []cachePkg // sorted by path
	moduleKey string
}

// computeCacheKeys walks the module exactly like LoadModule (same directory
// skips, same non-test file selection) but reads only file bytes and import
// lists. analyzerSig folds the selected analyzer names into every key so a
// different -run/-skip selection never reuses another selection's entries.
func computeCacheKeys(root string, analyzers []*Analyzer) (*cacheKeys, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoModule, root)
	}
	m := moduleLine.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	modPath := string(m[1])

	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	analyzerSig := cacheSchema + "|" + strings.Join(names, ",")

	type rec struct {
		dir       string
		fileHash  string
		localDeps []string
	}
	recs := make(map[string]*rec)
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if !d.IsDir() {
			return nil
		}
		if path != abs && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var goFiles []string
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			goFiles = append(goFiles, name)
		}
		if len(goFiles) == 0 {
			return nil
		}
		sort.Strings(goFiles)
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		h := sha256.New()
		depSet := make(map[string]bool)
		fset := token.NewFileSet()
		for _, name := range goFiles {
			src, err := os.ReadFile(filepath.Join(path, name))
			if err != nil {
				return err
			}
			fmt.Fprintf(h, "%s\x00%d\x00", name, len(src))
			h.Write(src)
			h.Write([]byte{0})
			f, err := parser.ParseFile(fset, name, src, parser.ImportsOnly)
			if err != nil {
				// Leave the syntax error to LoadModule, which reports it with
				// full position context; an unparsable file simply forces a
				// miss by contributing its raw bytes to the hash.
				continue
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err == nil && (p == modPath || strings.HasPrefix(p, modPath+"/")) {
					depSet[p] = true
				}
			}
		}
		r := &rec{dir: path, fileHash: hex.EncodeToString(h.Sum(nil))}
		for dep := range depSet {
			if dep != pkgPath {
				r.localDeps = append(r.localDeps, dep)
			}
		}
		sort.Strings(r.localDeps)
		recs[pkgPath] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Transitive keys over the dependency DAG. A cycle cannot occur in a
	// buildable module; visiting state breaks one anyway (the member of the
	// cycle reached first omits the back edge, still deterministically).
	keys := make(map[string]string, len(recs))
	state := make(map[string]int)
	var keyOf func(path string) string
	keyOf = func(path string) string {
		if k, ok := keys[path]; ok {
			return k
		}
		r := recs[path]
		if r == nil || state[path] == 1 {
			return ""
		}
		state[path] = 1
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00", analyzerSig, path, r.fileHash)
		for _, dep := range r.localDeps {
			fmt.Fprintf(h, "%s=%s\x00", dep, keyOf(dep))
		}
		state[path] = 2
		k := hex.EncodeToString(h.Sum(nil))
		keys[path] = k
		return k
	}

	ck := &cacheKeys{}
	paths := make([]string, 0, len(recs))
	for p := range recs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	mh := sha256.New()
	for _, p := range paths {
		k := keyOf(p)
		ck.pkgs = append(ck.pkgs, cachePkg{path: p, dir: recs[p].dir, key: k})
		fmt.Fprintf(mh, "%s=%s\x00", p, k)
	}
	ck.moduleKey = hex.EncodeToString(mh.Sum(nil))
	return ck, nil
}

// entryFile maps a (half, key) pair to its on-disk name.
func entryFile(cacheDir, half, key string) string {
	sum := sha256.Sum256([]byte(half + "\x00" + key))
	return filepath.Join(cacheDir, hex.EncodeToString(sum[:])[:32]+".json")
}

func loadEntry(cacheDir, half, key, root, pkgPath string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(entryFile(cacheDir, half, key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Schema != cacheSchema || e.Package != pkgPath {
		return nil, false
	}
	diags := make([]Diagnostic, 0, len(e.Findings))
	for _, f := range e.Findings {
		diags = append(diags, Diagnostic{
			Pos:      token.Position{Filename: filepath.Join(root, filepath.FromSlash(f.File)), Line: f.Line, Column: f.Column},
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	return diags, true
}

func storeEntry(cacheDir, half, key, root, pkgPath string, diags []Diagnostic) error {
	e := cacheEntry{Schema: cacheSchema, Package: pkgPath, Findings: []cachedDiag{}}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		e.Findings = append(e.Findings, cachedDiag{
			File: filepath.ToSlash(rel), Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(cacheDir, "entry-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), entryFile(cacheDir, half, key))
}

// normalizePos strips the byte offset a live token.FileSet carries but a
// cache round trip cannot: with it gone, a fresh result and its reload are
// value-identical, so cold and warm runs return the same diagnostics.
func normalizePos(diags []Diagnostic) {
	for i := range diags {
		diags[i].Pos.Offset = 0
	}
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunWithCache is RunWithStats with an on-disk incremental cache rooted at
// cacheDir. It loads the module only when at least one cache entry misses,
// re-analyzes only the missed (package, suite-half) partitions, and stores
// their post-suppression findings for the next run. Stats cover only the
// analyzers that actually executed; Findings counts always cover the full
// merged result.
func RunWithCache(root string, analyzers []*Analyzer, cacheDir string) ([]Diagnostic, []AnalyzerStats, CacheStats, error) {
	keys, err := computeCacheKeys(root, analyzers)
	if err != nil {
		return nil, nil, CacheStats{}, err
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, nil, CacheStats{}, err
	}

	hasLocal, hasGlobal := false, false
	for _, a := range analyzers {
		if a.ModuleGlobal {
			hasGlobal = true
		} else {
			hasLocal = true
		}
	}

	var cstats CacheStats
	var diags []Diagnostic
	needLocal := make(map[string]bool)
	needGlobal := make(map[string]bool)
	for _, pk := range keys.pkgs {
		if hasLocal {
			if ds, ok := loadEntry(cacheDir, "local", pk.key, absRoot, pk.path); ok {
				cstats.Hits++
				diags = append(diags, ds...)
			} else {
				cstats.Misses++
				needLocal[pk.path] = true
			}
		}
		if hasGlobal {
			if ds, ok := loadEntry(cacheDir, "global", pk.key+"|"+keys.moduleKey, absRoot, pk.path); ok {
				cstats.Hits++
				diags = append(diags, ds...)
			} else {
				cstats.Misses++
				needGlobal[pk.path] = true
			}
		}
	}

	stats := make([]AnalyzerStats, len(analyzers))
	for i, a := range analyzers {
		stats[i].Name = a.Name
	}
	countFindings := func(all []Diagnostic) {
		for _, d := range all {
			for i := range stats {
				if stats[i].Name == d.Analyzer {
					stats[i].Findings++
					break
				}
			}
		}
	}

	if len(needLocal) == 0 && len(needGlobal) == 0 {
		cstats.FullHit = true
		sortDiagnostics(diags)
		countFindings(diags)
		return diags, stats, cstats, nil
	}

	mod, err := LoadModule(absRoot)
	if err != nil {
		return nil, nil, CacheStats{}, err
	}
	fresh := runPartitioned(mod, analyzers, needLocal, needGlobal, stats)
	keyByPath := make(map[string]string, len(keys.pkgs))
	for _, pk := range keys.pkgs {
		keyByPath[pk.path] = pk.key
	}
	for path, buckets := range fresh {
		key := keyByPath[path]
		if key == "" {
			continue
		}
		if needLocal[path] {
			if err := storeEntry(cacheDir, "local", key, absRoot, path, buckets.local); err != nil {
				return nil, nil, CacheStats{}, err
			}
			diags = append(diags, buckets.local...)
		}
		if needGlobal[path] {
			if err := storeEntry(cacheDir, "global", key+"|"+keys.moduleKey, absRoot, path, buckets.global); err != nil {
				return nil, nil, CacheStats{}, err
			}
			diags = append(diags, buckets.global...)
		}
	}
	sortDiagnostics(diags)
	countFindings(diags)
	return diags, stats, cstats, nil
}

// pkgBuckets splits one package's fresh findings by suite half: directive
// diagnostics travel with the local half (they are file-local, like the
// per-package analyzers).
type pkgBuckets struct {
	local  []Diagnostic
	global []Diagnostic
}

// runPartitioned executes, for every module package, exactly the suite
// halves the cache missed, mirroring RunWithStats's pool, suppression
// filtering, and per-bucket position sort. Durations accumulate into stats
// (findings are counted by the caller over the merged result).
func runPartitioned(mod *Module, analyzers []*Analyzer, needLocal, needGlobal map[string]bool, stats []AnalyzerStats) map[string]*pkgBuckets {
	out := make(map[string]*pkgBuckets, len(mod.Packages))
	var todo []*Package
	for _, pkg := range mod.Packages {
		if needLocal[pkg.Path] || needGlobal[pkg.Path] {
			out[pkg.Path] = &pkgBuckets{local: []Diagnostic{}, global: []Diagnostic{}}
			todo = append(todo, pkg)
		}
	}

	workers := poolWorkers(len(todo))
	durs := make([][]time.Duration, len(todo))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				pkg := todo[j]
				buckets := out[pkg.Path]
				durs[j] = make([]time.Duration, len(analyzers))

				sup := make(suppressions)
				var directiveDiags []Diagnostic
				collectSuppressions(pkg.Fset, pkg.Files, sup, &directiveDiags)
				if needLocal[pkg.Path] {
					buckets.local = append(buckets.local, directiveDiags...)
				}

				for i, a := range analyzers {
					if a.ModuleGlobal && !needGlobal[pkg.Path] {
						continue
					}
					if !a.ModuleGlobal && !needLocal[pkg.Path] {
						continue
					}
					files := scopedFiles(a, pkg)
					if len(files) == 0 {
						continue
					}
					dst := &buckets.local
					if a.ModuleGlobal {
						dst = &buckets.global
					}
					pass := &Pass{Analyzer: a, Fset: pkg.Fset, Mod: mod, Pkg: pkg, Files: files, diags: dst}
					start := time.Now()
					a.Run(pass)
					durs[j][i] += time.Since(start)
				}

				for _, bucket := range []*[]Diagnostic{&buckets.local, &buckets.global} {
					kept := (*bucket)[:0]
					for _, d := range *bucket {
						if !sup.allows(d) {
							kept = append(kept, d)
						}
					}
					normalizePos(kept)
					sortDiagnostics(kept)
					*bucket = kept
				}
			}
		}()
	}
	for j := range todo {
		idx <- j
	}
	close(idx)
	wg.Wait()
	for j := range durs {
		for i := range analyzers {
			if durs[j] != nil {
				stats[i].Duration += durs[j][i]
			}
		}
	}
	return out
}

// poolWorkers bounds the worker pool like RunWithStats does.
func poolWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
