// Package fixture exercises the lockacrosssend analyzer: a mutex held
// across a channel operation or a transport Send/Recv call.
package fixture

import "sync"

// Conn stands in for transport.Conn.
type Conn struct{}

func (Conn) Send(b []byte) error          { return nil }
func (Conn) Recv() ([]byte, error)        { return nil, nil }
func (Conn) Close() error                 { return nil }
func (Conn) Describe(prefix string) error { return nil }

type node struct {
	mu   sync.Mutex
	conn Conn
	ch   chan int
	seq  int
}

// BadSendUnderLock holds the mutex across a channel send.
func (n *node) BadSendUnderLock(v int) {
	n.mu.Lock()
	n.seq++
	n.ch <- v // want "channel send while n.mu is locked"
	n.mu.Unlock()
}

// BadRecvUnderDeferredLock pins the lock for the whole function, then
// blocks on a receive.
func (n *node) BadRecvUnderDeferredLock() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return <-n.ch // want "channel receive while n.mu is locked"
}

// BadTransportSend holds the mutex across a blocking transport call.
func (n *node) BadTransportSend(b []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conn.Send(b) // want "call to n.conn.Send while n.mu is locked"
}

// BadNestedBlock: the communication hides inside a nested if body.
func (n *node) BadNestedBlock(b []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(b) > 0 {
		if _, err := n.conn.Recv(); err != nil { // want "call to n.conn.Recv while n.mu is locked"
			return err
		}
	}
	return nil
}

// GoodUnlockBeforeSend releases before communicating.
func (n *node) GoodUnlockBeforeSend(v int) {
	n.mu.Lock()
	n.seq++
	n.mu.Unlock()
	n.ch <- v
}

// GoodLockAroundStateOnly never communicates under the lock.
func (n *node) GoodLockAroundStateOnly() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	return n.seq
}

// GoodFuncLitBoundary: the literal runs on another goroutine's schedule;
// the analyzer must not charge the outer lock to it.
func (n *node) GoodFuncLitBoundary() func(int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return func(v int) {
		n.ch <- v
	}
}

// GoodNonMutexLock: a Lock method on a non-mutex type is not tracked when
// type information identifies it.
type fakeLocker struct{}

func (fakeLocker) Lock()   {}
func (fakeLocker) Unlock() {}

func GoodNonMutex(c Conn, f fakeLocker, b []byte) error {
	f.Lock()
	defer f.Unlock()
	return c.Send(b)
}

// embedsMutex promotes Lock/Unlock from an embedded mutex; it must still be
// tracked.
type embedsMutex struct {
	sync.Mutex
	conn Conn
}

func (e *embedsMutex) BadEmbedded(b []byte) error {
	e.Lock()
	defer e.Unlock()
	return e.conn.Send(b) // want "call to e.conn.Send while e is locked"
}
