// Package fixture exercises the logleak analyzer: values whose static type
// can hold secret data must not be formatted into strings, logs or errors —
// including %v on structs that merely contain a secret field.
package fixture

import (
	"fmt"
	"log"
)

// record is a per-individual secret record.
//
//gendpr:secret
type record struct {
	genotype []byte
}

// wrapper is not itself annotated; it leaks through containment.
type wrapper struct {
	id  string
	rec *record
}

func logRecord(r *record) {
	fmt.Printf("record: %v\n", r) // want "can carry per-individual secret data and reaches fmt output"
}

func logWrapper(w wrapper) {
	log.Println(w) // want "can carry per-individual secret data and reaches log output"
}

func sprintLeak(r record) string {
	return fmt.Sprintf("%v", r) // want "can carry per-individual secret data and reaches fmt.Sprintf"
}

func errLeak(w wrapper) error {
	return fmt.Errorf("bad wrapper %v", w) // want "can carry per-individual secret data and reaches an error message"
}

// Public metadata next to the secret is fine.
func logMeta(w wrapper) {
	fmt.Println(w.id)
}

func describe(n int) string {
	return fmt.Sprintf("%d records", n)
}
