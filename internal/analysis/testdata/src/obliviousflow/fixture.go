// Package fixture exercises the obliviousflow analyzer: inside an
// access-pattern-critical scope (the test registers this package as one),
// per-individual data must not decide branches, bound loops, index memory,
// size allocations or feed panics — except through a declared oblivious
// barrier (the annotated ctSelect/ctEq below stand in for
// internal/oblivious/ct).
package fixture

//gendpr:source(individual): one genotype value
func genotype() uint64 { return 1 }

//gendpr:source(aggregate): cohort-level count
func cohortCount() uint64 { return 42 }

// ctSelect is the fixture's constant-time select: a declared barrier, so its
// body is exempt and handing secrets to it is sanctioned.
//
//gendpr:oblivious: mask arithmetic stand-in for ct.Select
func ctSelect(choose, a, b uint64) uint64 {
	mask := -(choose & 1)
	return b ^ (mask & (a ^ b))
}

// ctEq is the fixture's constant-time equality.
//
//gendpr:oblivious: mask arithmetic stand-in for ct.Eq
func ctEq(a, b uint64) uint64 {
	x := a ^ b
	return ((x | -x) >> 63) ^ 1
}

// plainBranch: the direct violation ctSelect exists to avoid.
func plainBranch() uint64 {
	g := genotype()
	if g == 1 { // want "per-individual data decides a branch"
		return 7
	}
	return 9
}

// maskedSelect computes the same result through the barrier: silent, even
// with the call split across lines.
func maskedSelect() uint64 {
	g := genotype()
	return ctSelect(
		ctEq(g, 1),
		7,
		9,
	)
}

// predicate: a stored one-bit predicate still carries the secret.
func predicate() uint64 {
	g := genotype()
	ok := g == 1
	if ok { // want "per-individual data decides a branch"
		return 1
	}
	return 0
}

// loopBound: iteration count reveals the value.
func loopBound() uint64 {
	g := genotype()
	var acc uint64
	for i := uint64(0); i < g; i++ { // want "per-individual data bounds a loop"
		acc++
	}
	return acc
}

// indexed: a secret-derived address is visible to the host.
func indexed(table []uint64) uint64 {
	g := genotype()
	return table[g] // want "per-individual data indexes memory"
}

// sliced: slice bounds are addresses too.
func sliced(table []uint64) []uint64 {
	g := genotype()
	return table[g:] // want "per-individual data indexes memory"
}

// sized: allocation size is observable host behavior.
func sized() []uint64 {
	g := genotype()
	return make([]uint64, g) // want "per-individual data sizes an allocation"
}

// aborted: whether a panic fires is control flow.
func aborted() {
	g := genotype()
	panic(g) // want "per-individual data feeds a panic"
}

// switched: switch tags and case expressions decide multi-way branches.
func switched() int {
	g := genotype()
	switch g { // want "per-individual data decides a switch"
	case 1:
		return 1
	}
	return 0
}

// shortCircuit: evaluating the right operand of && is itself a branch
// decided by the left.
func shortCircuit(pub bool) bool {
	g := genotype()
	return g == 1 && pub // want "per-individual data decides a branch"
}

// twoHop: the branch sits two calls beneath the secret — the summary chain
// carries the blame back to the in-scope call site.
func hop2(x uint64) uint64 {
	if x == 1 { // parameter-relative here: blamed at the tainted call site
		return 1
	}
	return 0
}

func hop1(x uint64) uint64 { return hop2(x) }

func twoHop() uint64 {
	g := genotype()
	return hop1(g) // want "per-individual data decides a branch"
}

// chooser dispatches the decision through an interface: the may-call
// summaries of the implementations still carry the blame.
type chooser interface {
	pick(x uint64) uint64
}

type branchy struct{}

func (branchy) pick(x uint64) uint64 {
	if x == 1 {
		return 1
	}
	return 0
}

func dispatched(c chooser) uint64 {
	g := genotype()
	return c.pick(g) // want "per-individual data decides a branch"
}

// captured: a closure capturing the secret branches on it.
func captured() uint64 {
	g := genotype()
	pick := func() uint64 {
		if g == 1 { // want "per-individual data decides a branch"
			return 1
		}
		return 0
	}
	return pick()
}

// aggregateBranch: cohort-level statistics are not per-individual data; the
// LD cutoff comparison in phase code is legitimate control flow.
func aggregateBranch() uint64 {
	c := cohortCount()
	if c > 40 {
		return 1
	}
	return 0
}

// justified: a reviewed exception stays silent and binds to its own line.
func justified(table []uint64) uint64 {
	g := genotype()
	//gendpr:allow(obliviousflow): fixture exercises the suppression path
	return table[g]
}
