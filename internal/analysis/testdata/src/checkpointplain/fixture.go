// Package fixture exercises the checkpointplain analyzer: per-individual
// data must never be persisted through the checkpoint layer — not even
// sealed — and checkpoint structs must be structurally post-aggregation.
// The test registers saveState as the fixture's checkpoint sink.
package fixture

// Genomes is the fixture's per-individual secret.
//
//gendpr:secret
type Genomes struct {
	rows [][]byte
}

//gendpr:source(individual): raw genotype rows
func loadGenomes() *Genomes { return &Genomes{} }

//gendpr:source(aggregate): cohort counts
func counts() []int64 { return nil }

//gendpr:declassifier: stand-in for AEAD sealing
func sealBytes(b []byte) []byte { return b }

// saveState is the fixture checkpoint sink (registered by the test).
func saveState(b []byte) {}

func encode(c []int64) []byte { return nil }

// state is scanned structurally: a field that can hold per-individual data
// is a finding even without an observed flow.
type state struct {
	Counts []int64
	Rows   *Genomes // want "checkpoint struct field state.Rows can hold per-individual data"
}

func persistRaw() {
	g := loadGenomes()
	saveState(g.rows[0]) // want "per-individual data persisted through a checkpoint"
}

// Sealing does not rescue a checkpoint: the ciphertext outlives the enclave.
func persistSealed() {
	g := loadGenomes()
	saveState(sealBytes(g.rows[0])) // want "per-individual data persisted through a checkpoint"
}

// Aggregate state is exactly what checkpoints are for: no finding.
func persistAggregate() {
	saveState(encode(counts()))
}
