// Package fixture exercises the secretflow interprocedural taint analyzer:
// direct flows, multi-hop propagation through helpers, interface dispatch,
// closures, and declassified (sealed) paths that must stay silent.
package fixture

import (
	"errors"
	"fmt"
	"os"
)

// Genotypes is the fixture's per-individual secret record. The storage
// field carries the annotation, so any read of it is tainted.
type Genotypes struct {
	//gendpr:secret
	rows [][]byte
}

//gendpr:source(individual): loads per-individual genotype rows
func loadGenotypes() *Genotypes { return &Genotypes{} }

//gendpr:source(aggregate): cohort-level allele counts
func alleleCounts() []int64 { return nil }

//gendpr:declassifier: stand-in for AEAD sealing
func sealBytes(b []byte) []byte { return b }

// --- direct flows ---

func direct() {
	g := loadGenotypes()
	fmt.Println(g.rows) // want "per-individual secret data reaches fmt output"
}

func directAgg() error {
	c := alleleCounts()
	return fmt.Errorf("counts were %v", c) // want "aggregate secret data reaches an error message"
}

func errFlow() error {
	g := loadGenotypes()
	return errors.New(string(flatten(g))) // want "per-individual secret data reaches an error message"
}

// --- interprocedural propagation: source -> wrap -> emit (2 hops) ---

func wrap(g *Genotypes) [][]byte { return g.rows }

func emit(rows [][]byte) {
	fmt.Println(rows)
}

func twoHop() {
	g := loadGenotypes()
	emit(wrap(g)) // want "per-individual secret data reaches fmt output (host-visible) via secretflow.emit"
}

// --- and through a relay (3 hops), blame chain intact ---

func relay(rows [][]byte) { emit(rows) }

func threeHop() {
	g := loadGenotypes()
	relay(g.rows) // want "via secretflow.emit via secretflow.relay"
}

// --- interface dispatch: the sink is behind a dynamic call ---

type Emitter interface {
	Emit(rows [][]byte)
}

type consoleEmitter struct{}

func (consoleEmitter) Emit(rows [][]byte) { fmt.Println(rows) }

func viaInterface(e Emitter) {
	g := loadGenotypes()
	e.Emit(g.rows) // want "via (secretflow.consoleEmitter).Emit"
}

// --- closures: parameter flow and capture ---

func viaClosure() {
	g := loadGenotypes()
	sink := func(rows [][]byte) {
		fmt.Println(rows) // want "per-individual secret data reaches fmt output"
	}
	sink(g.rows)
}

func viaCapture() {
	g := loadGenotypes()
	dump := func() {
		fmt.Println(g.rows) // want "per-individual secret data reaches fmt output"
	}
	dump()
}

// --- declassified path: sealed bytes may leave; no findings here ---

func flatten(g *Genotypes) []byte { return g.rows[0] }

func sealedEgress() error {
	g := loadGenotypes()
	blob := sealBytes(flatten(g))
	return os.WriteFile("out.bin", blob, 0o600)
}

// --- untainted control: public metadata flows are silent ---

func cleanError(name string, n int) error {
	return fmt.Errorf("member %s sent %d records", name, n)
}

// --- suppression binding: a directive above a multi-line call covers the
// arguments on its continuation lines; no findings in this block ---

func suppressedMultiline() {
	g := loadGenotypes()
	//gendpr:allow(secretflow): fixture: the directive above a call binds to every continuation-line argument
	fmt.Println(
		"rows:",
		g.rows,
	)
}

func suppressedSameLine() {
	g := loadGenotypes()
	fmt.Println(g.rows) //gendpr:allow(secretflow): fixture: a trailing directive binds to its own line
}
