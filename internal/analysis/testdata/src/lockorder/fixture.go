// Package fixture exercises the lockorder analyzer: the module-wide
// acquisition-order graph must be acyclic; opposite orders, interprocedural
// chains, and re-acquisition of a held lock are findings.
package fixture

import "sync"

var (
	alpha sync.Mutex
	beta  sync.Mutex
)

func work() {}

// LockAlphaBeta and LockBetaAlpha take the pair in opposite orders — the
// classic two-goroutine deadlock.
func LockAlphaBeta() {
	alpha.Lock()
	defer alpha.Unlock()
	beta.Lock() // want "lock-order cycle"
	defer beta.Unlock()
	work()
}

func LockBetaAlpha() {
	beta.Lock()
	defer beta.Unlock()
	alpha.Lock() // want "lock-order cycle"
	defer alpha.Unlock()
	work()
}

// Consistent order on a second pair of locks: no finding.
var (
	gammaMu sync.Mutex
	deltaMu sync.Mutex
)

func ConsistentOne() {
	gammaMu.Lock()
	defer gammaMu.Unlock()
	deltaMu.Lock()
	defer deltaMu.Unlock()
	work()
}

func ConsistentTwo() {
	gammaMu.Lock()
	deltaMu.Lock()
	work()
	deltaMu.Unlock()
	gammaMu.Unlock()
}

// Interprocedural cycle: holdEpsilonCallZeta holds epsilon and calls a
// helper that takes zeta; the reverse path takes zeta then epsilon directly.
var (
	epsilon sync.Mutex
	zeta    sync.Mutex
)

// takeZeta acquires zeta with nothing held, so its own site is clean; the
// cycle is attributed to the call site holding epsilon.
func takeZeta() {
	zeta.Lock()
	defer zeta.Unlock()
	work()
}

func HoldEpsilonCallZeta() {
	epsilon.Lock()
	defer epsilon.Unlock()
	takeZeta() // want "call may acquire"
}

func HoldZetaTakeEpsilon() {
	zeta.Lock()
	defer zeta.Unlock()
	epsilon.Lock() // want "lock-order cycle"
	defer epsilon.Unlock()
	work()
}

// Unlock-before-next-acquire breaks the chain: no held set at the second
// Lock, so no edge and no finding.
var (
	eta   sync.Mutex
	theta sync.Mutex
)

func SequentialNotNested() {
	eta.Lock()
	work()
	eta.Unlock()
	theta.Lock()
	work()
	theta.Unlock()
}

func SequentialOpposite() {
	theta.Lock()
	work()
	theta.Unlock()
	eta.Lock()
	work()
	eta.Unlock()
}

// Self-deadlock: sync.Mutex is not reentrant.
var iota1 sync.Mutex

func Reacquire() {
	iota1.Lock()
	defer iota1.Unlock()
	iota1.Lock() // want "already held"
	work()
}

// Struct-field locks get class-level identity: methods of two different
// registries still share the field object, so opposite nesting is found.
type registry struct {
	mu    sync.Mutex
	audit sync.Mutex
}

func (r *registry) LockForward() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.audit.Lock() // want "lock-order cycle"
	defer r.audit.Unlock()
	work()
}

func (r *registry) LockBackward() {
	r.audit.Lock()
	defer r.audit.Unlock()
	r.mu.Lock() // want "lock-order cycle"
	defer r.mu.Unlock()
	work()
}
