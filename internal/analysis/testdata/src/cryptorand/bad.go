// Package fixture exercises the cryptorand analyzer: math/rand (any
// flavor) is forbidden in privacy-critical packages.
package fixture

import (
	"math/rand" // want "math/rand imported in privacy-critical package"
)

// Shuffle leaks: a seeded PRNG makes the permutation predictable.
func Shuffle(v []int) {
	rand.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
}
