package fixture

import (
	"crypto/rand"
	"io"
)

// Nonce is fine: crypto/rand is the sanctioned entropy source.
func Nonce() ([]byte, error) {
	b := make([]byte, 16)
	_, err := io.ReadFull(rand.Reader, b)
	return b, err
}
