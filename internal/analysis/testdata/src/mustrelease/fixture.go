// Package fixture exercises the mustrelease analyzer: spec-table resources
// must be released on every CFG path; defer at the acquire site is the
// sanctioned idiom, and defer inside a loop is its own finding.
package fixture

import (
	"context"
	"os"
	"time"
)

// res/acquire stand in for a project-local acquire/release pair; the test
// injects fixture/mustrelease.acquire into the spec table.
type res struct{}

func (r *res) Close() {}
func (r *res) Use()   {}

func acquire() (*res, error) { return &res{}, nil }

func use(*res)        {}
func condition() bool { return false }

// GoodDeferImmediate: the sanctioned idiom.
func GoodDeferImmediate(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Stat()
	return err
}

// BadEarlyReturn: the condition branch returns without closing.
func BadEarlyReturn(path string) error {
	f, err := os.Open(path) // want "not released on every path"
	if err != nil {
		return err
	}
	if condition() {
		return nil
	}
	return f.Close()
}

// GoodAllPathsExplicit: no defer, but every path (error and success)
// releases — the fsync-then-close shape.
func GoodAllPathsExplicit(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// BadConditionalRelease: releasing only under a condition is the leak this
// analyzer exists for.
func BadConditionalRelease(path string) {
	f, err := os.Open(path) // want "not released on every path"
	if err != nil {
		return
	}
	if condition() {
		f.Close()
	}
}

// BadDiscard: binding the resource to _ makes release impossible.
func BadDiscard(path string) {
	f, _ := os.Open(path)
	f.Close()
	_, _ = os.Open(path) // want "is discarded"
}

// GoodEscapeReturn: ownership transfers to the caller.
func GoodEscapeReturn(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

type holder struct{ f *os.File }

// GoodEscapeStore: ownership transfers to the struct.
func GoodEscapeStore(h *holder, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

// BadDeferInLoop: the defers pile up until the function returns.
func BadDeferInLoop(paths []string) {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		defer f.Close() // want "inside a loop"
	}
}

// GoodExplicitInLoop: released each iteration.
func GoodExplicitInLoop(paths []string) {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		f.Close()
	}
}

// BadTimer: the timer is never stopped.
func BadTimer(d time.Duration, ch chan struct{}) {
	t := time.NewTimer(d) // want "not released on every path"
	select {
	case <-t.C:
	case <-ch:
	}
}

// GoodTimer: deferred Stop.
func GoodTimer(d time.Duration, ch chan struct{}) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ch:
	}
}

// BadContextCancel: cancel runs only under a condition; the other path
// leaks the context until the parent is cancelled.
func BadContextCancel(parent context.Context, d time.Duration) error {
	ctx, cancel := context.WithTimeout(parent, d) // want "not released on every path"
	<-ctx.Done()
	if condition() {
		cancel()
	}
	return ctx.Err()
}

// GoodContextCancel: deferred cancel.
func GoodContextCancel(parent context.Context, d time.Duration) error {
	ctx, cancel := context.WithTimeout(parent, d)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}

// BadPanicPath: panic unwinds without running a defer that was never
// registered — the resource leaks into the recovered caller.
func BadPanicPath(path string) {
	f, err := os.Open(path) // want "not released on every path"
	if err != nil {
		return
	}
	if condition() {
		panic("invariant violated")
	}
	f.Close()
}

// GoodPanicPath: the defer runs during unwinding too.
func GoodPanicPath(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	if condition() {
		panic("invariant violated")
	}
}

// BadInjectedPair: the fixture-local pair behaves like the built-ins.
func BadInjectedPair() {
	r, err := acquire() // want "not released on every path"
	if err != nil {
		return
	}
	r.Use()
}

// GoodInjectedPair: deferred release of the fixture-local pair.
func GoodInjectedPair() {
	r, err := acquire()
	if err != nil {
		return
	}
	defer r.Close()
	r.Use()
}

// GoodDeferredCleanupClosure: a deferred closure that releases counts.
func GoodDeferredCleanupClosure(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		f.Close()
	}()
	_, err = f.Stat()
	return err
}
