// Package fixture exercises the divergentfloat analyzer: values whose bits
// depend on an order Go leaves unspecified (map iteration, select races,
// goroutine fan-in) must not reach an order-sensitive statistic (the test
// registers statMAF as one) without an ordering barrier — a sort, an indexed
// merge, or a //gendpr:ordered function.
package fixture

import "sort"

// statMAF is the fixture's order-sensitive statistic (registered by the
// test): every federation member must compute it bit-identically.
func statMAF(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// mapOrder feeds map-iteration-ordered values straight into the statistic:
// float addition is not associative, so members disagree in the low bits.
func mapOrder(m map[int]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	return statMAF(vals) // want "order-nondeterministic value"
}

// sortedFirst re-establishes a canonical order before the statistic: silent.
func sortedFirst(m map[int]float64) float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	return statMAF(vals)
}

// mergeIndexed lands every value at its key-determined index, so the output
// is canonical no matter the iteration order.
//
//gendpr:ordered: each value lands at its key-determined index, so the output does not depend on map iteration order
func mergeIndexed(m map[int]float64, n int) []float64 {
	out := make([]float64, n)
	for k, v := range m {
		if k >= 0 && k < n {
			out[k] = v
		}
	}
	return out
}

// indexMerged goes through the annotated barrier: silent.
func indexMerged(m map[int]float64) float64 {
	return statMAF(mergeIndexed(m, 8))
}

// selectRace: which ready case wins is a scheduler race.
func selectRace(a, b chan float64) float64 {
	var vals []float64
	for i := 0; i < 2; i++ {
		select {
		case v := <-a:
			vals = append(vals, v)
		case v := <-b:
			vals = append(vals, v)
		}
	}
	return statMAF(vals) // want "order-nondeterministic value"
}

// fanIn: goroutine completion order decides the accumulation order.
func fanIn(parts [][]float64) float64 {
	ch := make(chan float64)
	for _, p := range parts {
		p := p
		go func() { ch <- sum(p) }()
	}
	var vals []float64
	for i := 0; i < len(parts); i++ {
		vals = append(vals, <-ch)
	}
	return statMAF(vals) // want "order-nondeterministic value"
}

// feed reaches the statistic one hop down; the summary carries the blame
// back to the tainted call site.
func feed(xs []float64) float64 { return statMAF(xs) }

func twoHop(m map[int]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	return feed(vals) // want "order-nondeterministic value"
}

// ranker dispatches the statistic through an interface: the may-call
// summaries of the implementations still carry the blame.
type ranker interface {
	rank(xs []float64) float64
}

type mafRanker struct{}

func (mafRanker) rank(xs []float64) float64 { return statMAF(xs) }

func dispatched(r ranker, m map[int]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	return r.rank(vals) // want "order-nondeterministic value"
}

// captured: a closure capturing the unordered slice still observes the race.
func captured(m map[int]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	f := func() float64 {
		return statMAF(vals) // want "order-nondeterministic value"
	}
	return f()
}

// justified: a reviewed exception stays silent.
func justified(m map[int]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	//gendpr:allow(divergentfloat): fixture exercises the suppression path
	return statMAF(vals)
}
