// Package fixture exercises the errdrop analyzer: discarded errors from
// transport send/receive and wire encode/decode calls.
package fixture

// Conn stands in for transport.Conn.
type Conn struct{}

func (Conn) Send(b []byte) error   { return nil }
func (Conn) Recv() ([]byte, error) { return nil, nil }

func decodeFrame(b []byte) (int, error) { return 0, nil }

// encodeFrame has no error result: bare calls are pointless but not an
// errdrop finding.
func encodeFrame(v int) []byte { return nil }

// BadBareSend drops the error entirely.
func BadBareSend(c Conn, b []byte) {
	c.Send(b) // want "result of Send discarded"
}

// BadBlankSend assigns the error to blank.
func BadBlankSend(c Conn, b []byte) {
	_ = c.Send(b) // want "error from Send assigned to blank"
}

// BadBlankDecode drops the error position of a multi-result decode.
func BadBlankDecode(b []byte) int {
	v, _ := decodeFrame(b) // want "error from decodeFrame assigned to blank"
	return v
}

// BadGoSend launches a send whose error nobody can observe.
func BadGoSend(c Conn, b []byte) {
	go c.Send(b) // want "error from Send discarded by go statement"
}

// BadDeferRecv defers a receive whose error vanishes.
func BadDeferRecv(c Conn) {
	defer c.Recv() // want "error from Recv discarded by defer"
}

// GoodChecked handles the error.
func GoodChecked(c Conn, b []byte) error {
	if err := c.Send(b); err != nil {
		return err
	}
	v, err := decodeFrame(b)
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// GoodEncodeNoError: the callee has no error result, so a bare call is not
// an errdrop finding (type information proves it).
func GoodEncodeNoError(v int) {
	encodeFrame(v)
}

// GoodUnmatchedName: dropping errors from unrelated calls is outside this
// analyzer's contract.
func GoodUnmatchedName(c Conn) {
	_ = helper()
}

func helper() error { return nil }
