// Package fixture exercises the floateq analyzer: exact float comparisons
// outside the sanctioned idioms.
package fixture

import "math"

const cutoff = 0.05

// BadFrequencyEquality compares computed frequencies exactly.
func BadFrequencyEquality(caseFreq, refFreq float64) bool {
	return caseFreq == refFreq // want "exact floating-point == between caseFreq and refFreq"
}

// BadCutoffEquality tests a derived value against a non-zero threshold.
func BadCutoffEquality(maf float64) bool {
	return maf != cutoff // want "exact floating-point != between maf and cutoff"
}

// BadFloat32 also applies to float32 operands.
func BadFloat32(a, b float32) bool {
	return a == b // want "exact floating-point == between a and b"
}

// GoodNaNIdiom: self-comparison is the NaN check.
func GoodNaNIdiom(v float64) bool {
	return v != v
}

// GoodZeroSentinel: comparing against exact zero is IEEE-exact.
func GoodZeroSentinel(n float64) float64 {
	if n == 0 {
		return 0
	}
	return 1 / n
}

// GoodIntComparison: integer equality is unaffected.
func GoodIntComparison(a, b int64) bool {
	return a == b
}

// GoodTolerance is the recommended pattern.
func GoodTolerance(a, b float64) bool {
	return math.Abs(a-b) < 1e-12
}

// GoodOrdering: relational comparisons stay legal (cutoffs use < and >=).
func GoodOrdering(p float64) bool {
	return p < 1e-5
}

// GoodSuppressed documents an intentional exact comparison.
func GoodSuppressed(a, b float64) bool {
	//gendpr:allow(floateq): fixture demonstrates a justified suppression
	return a == b
}
