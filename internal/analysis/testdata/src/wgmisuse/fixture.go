// Package fixture exercises the wgmisuse analyzer: WaitGroup.Add inside the
// spawned goroutine and non-deferred Done.
package fixture

import "sync"

// BadAddInsideGoroutine: Wait can observe zero before the goroutine runs.
func BadAddInsideGoroutine(work func()) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "wg.Add inside the spawned goroutine races with Wait"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// BadTrailingDone: an early return or panic in work skips Done.
func BadTrailingDone(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want "wg.Done is not deferred"
	}()
	wg.Wait()
}

// GoodChoreography: Add before go, Done deferred first.
func GoodChoreography(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// GoodNonWaitGroupAdd: Add on other types is ignored.
type counter struct{ n int }

func (c *counter) Add(v int) { c.n += v }
func (c *counter) Done()     {}

func GoodNonWaitGroup(c *counter) {
	go func() {
		c.Add(1)
		c.Done()
	}()
}

// GoodNamedFunction: goroutines running named functions are out of scope
// (the body is analyzed where it is declared).
func GoodNamedFunction(wg *sync.WaitGroup) {
	wg.Add(1)
	go release(wg)
	wg.Wait()
}

func release(wg *sync.WaitGroup) { defer wg.Done() }
