// Package fixture exercises the ctxdeadline analyzer: context parameters
// must be propagated into the blocking work, not accepted and ignored.
package fixture

import "context"

type conn struct{}

func (c conn) send(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// A named context parameter the body never references: the signature promises
// cancellability the implementation does not deliver.
func ignoresContext(ctx context.Context, n int) int { // want "never used"
	return n + 1
}

// Propagating the context into the blocking call is the point.
func propagates(ctx context.Context) error {
	c := conn{}
	return c.send(ctx)
}

// The blank identifier is the explicit opt-out for interface conformance.
func blankContext(_ context.Context) int {
	return 0
}

// Checking ctx.Err() counts as a use.
func checksErr(ctx context.Context) error {
	return ctx.Err()
}

// Function literals are held to the same rule.
var litIgnores = func(ctx context.Context) int { // want "never used"
	return 2
}

// A closure capturing the outer context counts as propagation.
func closurePropagates(ctx context.Context) func() error {
	return func() error { return ctx.Err() }
}

// An unnamed parameter cannot be referenced and is not flagged.
func unnamed(context.Context) int {
	return 3
}
