// Package fixture exercises the nakedrecv analyzer: direct Conn.Recv calls
// are unbounded waits and must go through a deadline-aware wrapper.
package fixture

import (
	"errors"
	"time"
)

// Message stands in for transport.Message.
type Message struct {
	Kind    uint16
	Payload []byte
}

// Conn stands in for transport.Conn.
type Conn interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// RecvDeadline stands in for the transport package's deadline-aware wrapper.
func RecvDeadline(c Conn, timeout time.Duration) (Message, error) {
	//gendpr:allow(nakedrecv): this IS the deadline wrapper; the deadline is set above
	return c.Recv()
}

func nakedLoop(c Conn) error {
	for {
		msg, err := c.Recv() // want "waits forever on a silent peer"
		if err != nil {
			return err
		}
		_ = msg
	}
}

func nakedInline(c Conn) (Message, error) {
	return c.Recv() // want "waits forever on a silent peer"
}

func wrapped(c Conn) error {
	msg, err := RecvDeadline(c, time.Second)
	if err != nil {
		return err
	}
	_ = msg
	return nil
}

func justified(c Conn) (Message, error) {
	//gendpr:allow(nakedrecv): handshake step bounded by the caller's watchdog
	return c.Recv()
}

// receiver is an unrelated type whose Recv is not a connection receive; the
// type-aware refinement must leave it alone.
type mailbox struct{ queue []string }

func (m *mailbox) Recv() string {
	if len(m.queue) == 0 {
		return ""
	}
	head := m.queue[0]
	m.queue = m.queue[1:]
	return head
}

func unrelated(m *mailbox) string {
	return m.Recv()
}

// errOnly returns one value; not a message receive either.
type errOnly struct{}

func (errOnly) Recv() error { return errors.New("nope") }

func alsoUnrelated(e errOnly) error {
	return e.Recv()
}
