// Package fixture exercises the goroleak analyzer: every spawned goroutine
// needs a provable termination signal — a WaitGroup.Done, a completion
// channel visible to the spawner, or a loop that terminates via context
// cancellation or a channel the package closes.
package fixture

import (
	"context"
	"sync"
)

func serve(conn chan int) {
	for range conn {
	}
}

func work() {}

// BadFireAndForget: straight-line body, nothing joins or signals it; serve
// may block forever.
func BadFireAndForget(conn chan int) {
	go func() { // want "not joinable and has no termination signal"
		serve(conn)
	}()
}

// GoodWaitGroup: joinable via Done.
func GoodWaitGroup(conn chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serve(conn)
	}()
	wg.Wait()
}

// GoodCompletionChannel: the spawner consumes the close.
func GoodCompletionChannel() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// GoodResultSend: a send on a captured channel is a completion signal too.
func GoodResultSend() int {
	results := make(chan int, 1)
	go func() {
		work()
		results <- 1
	}()
	return <-results
}

// BadUnboundedLoop: for {} with no cancellation check.
func BadUnboundedLoop() {
	go func() {
		for { // want "unbounded loop in goroutine has no termination signal"
			work()
		}
	}()
}

// GoodCtxLoop: the ctx.Done case returns out of the loop.
func GoodCtxLoop(ctx context.Context, tick chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
				work()
			}
		}
	}()
}

// GoodCtxErrLoop: polling ctx.Err with a conditional return also exits.
func GoodCtxErrLoop(ctx context.Context, tick chan struct{}) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			<-tick
		}
	}()
}

// BadBareBreakInSelect: break binds to the select, not the loop — the
// cancellation case never leaves the loop.
func BadBareBreakInSelect(ctx context.Context, tick chan struct{}) {
	go func() {
		for { // want "cannot exit the loop"
			select {
			case <-ctx.Done():
				break
			case <-tick:
				work()
			}
		}
	}()
}

// GoodLabeledBreak: the labeled break escapes the loop, so the same shape
// with a label is clean.
func GoodLabeledBreak(ctx context.Context, tick chan struct{}) {
	go func() {
	loop:
		for {
			select {
			case <-ctx.Done():
				break loop
			case <-tick:
				work()
			}
		}
		work()
	}()
}

// BadRangeUnclosedChannel: nothing in the package ever closes jobs.
func BadRangeUnclosedChannel(jobs chan int) {
	go func() {
		for range jobs { // want "ranges over a channel no function in this package closes"
			work()
		}
	}()
}

// GoodRangeClosedChannel: the spawner closes the channel it hands out.
func GoodRangeClosedChannel(n int) {
	queue := make(chan int, n)
	go func() {
		for range queue {
			work()
		}
	}()
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
}

// pooled spawns named workers; run is joinable, leak is not.
type pooled struct {
	wg sync.WaitGroup
}

func (p *pooled) run(queue chan int) {
	defer p.wg.Done()
	for range queue {
		work()
	}
}

func (p *pooled) leak() {
	for { // want "unbounded loop in goroutine has no termination signal"
		work()
	}
}

// GoodNamedWorker / BadNamedWorker: `go p.method()` resolves the method
// body declared in this package.
func GoodNamedWorker(p *pooled, queue chan int) {
	p.wg.Add(1)
	go p.run(queue)
}

func BadNamedWorker(p *pooled) {
	go p.leak()
}

// BadOpaqueSpawn: a function value cannot be resolved, so termination is
// unprovable at the spawn site.
func BadOpaqueSpawn(fn func()) {
	go fn() // want "cannot be resolved"
}

// BadLoopVarCapture: each goroutine captures the per-iteration channel, but
// nobody ever closes any of them.
func BadLoopVarCapture(chans []chan int) {
	for _, ch := range chans {
		go func() {
			for range ch { // want "ranges over a channel no function in this package closes"
				work()
			}
		}()
	}
}

// GoodLoopVarCapture: the spawner closes the captured channel after feeding
// it, so every worker's range terminates.
func GoodLoopVarCapture(chans []chan int) {
	for _, ch := range chans {
		go func() {
			for range ch {
				work()
			}
		}()
		ch <- 1
		close(ch)
	}
}
