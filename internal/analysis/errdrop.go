package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errDropNames are the call names whose error results carry protocol state:
// transport sends/receives and the frame/wire codecs. Dropping one leaves a
// federation peer silently desynchronized — the member believes a reply was
// delivered, the leader never sees it — which surfaces later as a hung Recv
// or a protocol violation attributed to the wrong party.
var errDropNames = map[string]bool{
	"Send":       true,
	"Recv":       true,
	"WriteFrame": true,
	"ReadFrame":  true,
	"Finish":     true,
}

// errDropPrefixes extends the match to the wire codec helper families
// (encodeX/decodeX, EncodeX/DecodeX) whose final result is an error.
var errDropPrefixes = []string{"encode", "decode", "Encode", "Decode"}

// NewErrDrop returns the analyzer flagging discarded error results from
// transport send/receive and wire encode/decode calls: a bare call
// statement, an `_ =` assignment, a blank in the error position of a
// multi-assign, and go/defer statements that discard the result.
//
// When type information is available, only calls whose signature really ends
// in error are flagged; otherwise the name match decides.
func NewErrDrop(scopes []Scope) *Analyzer {
	a := &Analyzer{
		Name:   "errdrop",
		Doc:    "errors from transport Send/Recv and wire encode/decode must be checked",
		Scopes: scopes,
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					if call, ok := s.X.(*ast.CallExpr); ok {
						checkDroppedCall(p, call, "result of %s discarded: %s")
					}
				case *ast.GoStmt:
					checkDroppedCall(p, s.Call, "error from %s discarded by go statement: %s")
				case *ast.DeferStmt:
					checkDroppedCall(p, s.Call, "error from %s discarded by defer: %s")
				case *ast.AssignStmt:
					checkDroppedAssign(p, s)
				}
				return true
			})
		}
	}
	return a
}

func errDropCallee(call *ast.CallExpr) (string, bool) {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return "", false
	}
	if errDropNames[name] {
		return name, true
	}
	for _, prefix := range errDropPrefixes {
		if strings.HasPrefix(name, prefix) && len(name) > len(prefix) {
			return name, true
		}
	}
	return "", false
}

// lastResultError reports whether the call's final result is an error.
// Unknown signatures (no type info) default to true so the name heuristics
// still apply on partially-checked packages.
func lastResultError(p *Pass, call *ast.CallExpr) bool {
	info := p.Pkg.Info
	if info == nil {
		return true
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return true
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return true
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

func checkDroppedCall(p *Pass, call *ast.CallExpr, format string) {
	name, ok := errDropCallee(call)
	if !ok || !lastResultError(p, call) {
		return
	}
	p.Reportf(call.Pos(), format, name,
		"a lost transport/wire error desynchronizes the protocol; handle it or add a justified //gendpr:allow(errdrop)")
}

// checkDroppedAssign flags `_ = f(...)` and `v, _ := f(...)` where the blank
// lands on the error result of a matched call.
func checkDroppedAssign(p *Pass, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := errDropCallee(call)
	if !ok || !lastResultError(p, call) {
		return
	}
	last, ok := s.Lhs[len(s.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	p.Reportf(s.Pos(),
		"error from %s assigned to blank: a lost transport/wire error desynchronizes the protocol; handle it or add a justified //gendpr:allow(errdrop)",
		name)
}
