package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrNoModule reports that the load directory has no go.mod. Callers treat
// it as a usage error (gendpr-lint exits 2 immediately) rather than an
// analysis result: without a module root there is nothing to lint.
var ErrNoModule = errors.New("analysis: not a module root (no go.mod)")

// Package is one parsed (and, when possible, type-checked) package. Test
// files are excluded: the invariants guard production code, and tests
// legitimately use deterministic randomness and exact comparisons.
type Package struct {
	// Path is the import path ("gendpr/internal/oram").
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset is the module-wide file set.
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the type-check result. They are non-nil even
	// when checking was incomplete; TypeErrors records what went wrong so
	// analyzers can degrade to syntactic checks.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Module is a loaded Go module: every package under the root, in dependency
// order (imports before importers).
type Module struct {
	Path     string
	Dir      string
	Fset     *token.FileSet
	Packages []*Package
}

// skipDir reports directories the loader never descends into.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// ModulePath reads the module path from root's go.mod without parsing any
// Go files. RunWithCache callers use it for report headers when a full
// cache hit means the module itself is never loaded.
func ModulePath(root string) (string, error) {
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("%w: %s", ErrNoModule, root)
	}
	m := moduleLine.FindSubmatch(modBytes)
	if m == nil {
		return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	return string(m[1]), nil
}

// LoadModule parses and type-checks every package of the module rooted at
// dir (the directory containing go.mod). Type-check failures in one package
// do not fail the load: they are recorded on the package and checking
// continues, so syntactic analyzers still see the whole module. A directory
// without go.mod fails fast with ErrNoModule.
func LoadModule(dir string) (*Module, error) {
	return LoadModuleVerbose(dir, nil)
}

// LoadModuleVerbose is LoadModule with optional progress logging: when log
// is non-nil, per-package parse and type-check wall times are written to it
// (the type-check of a cold module dominates gendpr-lint's runtime, and the
// per-package split shows where).
func LoadModuleVerbose(dir string, log io.Writer) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoModule, dir)
	}
	m := moduleLine.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", dir)
	}
	mod := &Module{Path: string(m[1]), Dir: abs, Fset: token.NewFileSet()}

	byPath := make(map[string]*Package)
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != abs && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		pkg, err := parseDir(mod.Fset, path, importPathFor(mod, abs, path))
		if err != nil {
			return err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	mod.Packages = topoSort(byPath)
	typeCheck(mod, byPath, log)
	return mod, nil
}

func importPathFor(mod *Module, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return mod.Path
	}
	return mod.Path + "/" + filepath.ToSlash(rel)
}

// parseDir parses the non-test Go files of one directory; nil when the
// directory holds no Go package.
func parseDir(fset *token.FileSet, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg, nil
}

// imports lists the package's import paths.
func (p *Package) imports() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	return out
}

// topoSort orders packages so every intra-module import precedes its
// importer (cycles cannot occur in a buildable module; any residue is
// appended in path order).
func topoSort(byPath map[string]*Package) []*Package {
	var order []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var visit func(string)
	visit = func(path string) {
		pkg := byPath[path]
		if pkg == nil || state[path] != 0 {
			return
		}
		state[path] = 1
		for _, dep := range pkg.imports() {
			visit(dep)
		}
		state[path] = 2
		order = append(order, pkg)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// chainImporter resolves intra-module imports from the already-checked
// packages and everything else (the standard library) by type-checking its
// source via go/importer's "source" compiler support.
type chainImporter struct {
	local map[string]*Package
	std   types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("analysis: %s not yet type-checked (import cycle?)", path)
		}
		return p.Types, nil
	}
	return c.std.ImportFrom(path, dir, mode)
}

// lockedImporter serializes access to go/importer's "source" importer, which
// is not safe for concurrent use. Intra-module imports never reach it (the
// chainImporter answers those from already-checked packages), so the lock
// only gates standard-library resolution — and the importer caches each std
// package after its first load, so contention fades as the check warms up.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.ImporterFrom
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.ImportFrom(path, dir, mode)
}

// typeCheck runs go/types over every package, scheduling a package as soon
// as its intra-module imports are checked (a wavefront over the dependency
// DAG) and fanning the ready set across a GOMAXPROCS-bounded pool. Failures
// are recorded on the package rather than propagated. A non-nil log receives
// per-package wall-time lines plus a cpu-vs-wall summary.
func typeCheck(mod *Module, byPath map[string]*Package, log io.Writer) {
	std, _ := importer.ForCompiler(mod.Fset, "source", nil).(types.ImporterFrom)
	imp := &chainImporter{local: byPath, std: &lockedImporter{imp: std}}

	// pending counts each package's unchecked intra-module imports;
	// dependents inverts the edge so a completion can release its importers.
	pending := make(map[string]int, len(mod.Packages))
	dependents := make(map[string][]*Package)
	for _, pkg := range mod.Packages {
		n := 0
		for _, dep := range pkg.imports() {
			if dep != pkg.Path && byPath[dep] != nil {
				n++
				dependents[dep] = append(dependents[dep], pkg)
			}
		}
		pending[pkg.Path] = n
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(mod.Packages) {
		workers = len(mod.Packages)
	}
	if workers < 1 {
		workers = 1
	}

	type result struct {
		pkg *Package
		dur time.Duration
	}
	ready := make(chan *Package, len(mod.Packages))
	done := make(chan result, len(mod.Packages))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pkg := range ready {
				start := time.Now()
				checkPackage(mod.Fset, pkg, imp)
				done <- result{pkg, time.Since(start)}
			}
		}()
	}

	// The coordinator owns pending and the log writer; workers only check
	// packages. Channel hand-off orders a dependency's published Types
	// before any dependent's read.
	wallStart := time.Now()
	scheduled := 0
	for _, pkg := range mod.Packages {
		if pending[pkg.Path] == 0 {
			scheduled++
			ready <- pkg
		}
	}
	var cpu time.Duration
	for finished := 0; finished < scheduled; finished++ {
		res := <-done
		cpu += res.dur
		if log != nil {
			fmt.Fprintf(log, "  load %-40s %8.1fms (%d files)\n",
				res.pkg.Path, float64(res.dur.Microseconds())/1000, len(res.pkg.Files))
		}
		for _, dep := range dependents[res.pkg.Path] {
			pending[dep.Path]--
			if pending[dep.Path] == 0 {
				scheduled++
				ready <- dep
			}
		}
	}
	close(ready)
	wg.Wait()

	// Import-cycle residue never reaches pending == 0; check it here so the
	// packages still record their errors, as the serial loop did.
	for _, pkg := range mod.Packages {
		if pending[pkg.Path] > 0 {
			checkPackage(mod.Fset, pkg, imp)
		}
	}
	if log != nil {
		wall := time.Since(wallStart)
		fmt.Fprintf(log, "  load total %.1fms wall, %.1fms cpu across %d packages (%d workers, %.1fx)\n",
			float64(wall.Microseconds())/1000, float64(cpu.Microseconds())/1000,
			len(mod.Packages), workers, float64(cpu)/float64(wall))
	}
}

func checkPackage(fset *token.FileSet, pkg *Package, imp types.Importer) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
}

// LoadPackageDir loads a single directory as one standalone package under
// the given import path, resolving imports from the standard library only.
// It backs the analyzer fixture tests, which lint self-contained testdata
// packages.
func LoadPackageDir(dir, path string) (*Package, error) {
	fset := token.NewFileSet()
	pkg, err := parseDir(fset, dir, path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	std, _ := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	checkPackage(fset, pkg, &chainImporter{local: nil, std: std})
	return pkg, nil
}
