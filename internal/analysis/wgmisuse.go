package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewWGMisuse returns the analyzer enforcing the two sync.WaitGroup rules
// the fan-out paths in internal/core and internal/federation depend on:
//
//  1. Add must happen before the goroutine starts. An Add inside the spawned
//     goroutine races with Wait — Wait can observe the counter at zero and
//     return while workers are still being scheduled, which under the
//     assessment pipeline means a phase reads partially-collected member
//     results.
//  2. Done must be deferred as the goroutine's first action. A trailing
//     Done is skipped by early returns and panics, leaving Wait blocked
//     forever — in federation terms, a leader that never finishes a round.
func NewWGMisuse(scopes []Scope) *Analyzer {
	a := &Analyzer{
		Name:   "wgmisuse",
		Doc:    "WaitGroup.Add belongs before the go statement; Done must be deferred inside the goroutine",
		Scopes: scopes,
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				checkGoroutineBody(p, lit.Body)
				return true
			})
		}
	}
	return a
}

// checkGoroutineBody scans one spawned function literal, without descending
// into nested function literals (inner go statements are visited on their
// own).
func checkGoroutineBody(p *Pass, body *ast.BlockStmt) {
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferred[s.Call] = true
		case *ast.CallExpr:
			sel, ok := s.Fun.(*ast.SelectorExpr)
			if !ok || len(s.Args) > 1 {
				return true
			}
			switch sel.Sel.Name {
			case "Add":
				if len(s.Args) == 1 && isWaitGroup(p, sel) {
					p.Reportf(s.Pos(),
						"%s.Add inside the spawned goroutine races with Wait (the counter can hit zero before this runs); call Add before the go statement",
						types.ExprString(sel.X))
				}
			case "Done":
				if len(s.Args) == 0 && isWaitGroup(p, sel) && !deferred[s] {
					p.Reportf(s.Pos(),
						"%s.Done is not deferred: an early return or panic skips it and Wait blocks forever; use `defer %s.Done()` at goroutine start",
						types.ExprString(sel.X), types.ExprString(sel.X))
				}
			}
		}
		return true
	})
}

// isWaitGroup resolves the selector receiver to sync.WaitGroup when type
// information is available; otherwise a conservative name heuristic keeps
// the check alive on partially-checked packages.
func isWaitGroup(p *Pass, sel *ast.SelectorExpr) bool {
	if t := receiverType(p, sel); t != nil {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
	}
	recv := strings.ToLower(types.ExprString(sel.X))
	return strings.HasSuffix(recv, "wg") || strings.Contains(recv, "waitgroup")
}
