package analysis

import (
	"strconv"
)

// forbiddenRandImports are the predictable-PRNG packages the privacy-critical
// code must never use: a seeded generator lets a colluding host replay
// enclave randomness (ORAM leaf remaps, oblivious shuffles, key material),
// voiding the access-pattern and unlinkability arguments of the paper's
// threat model.
var forbiddenRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// NewCryptoRand returns the analyzer forbidding math/rand imports inside the
// given privacy-critical scopes. Test files are exempt by construction (the
// loader never parses them); production code injects randomness through
// interfaces like oram.Rand backed by internal/crand.
func NewCryptoRand(scopes []Scope) *Analyzer {
	return &Analyzer{
		Name:   "cryptorand",
		Doc:    "privacy-critical packages must draw randomness from crypto/rand (internal/crand), never a seeded PRNG",
		Scopes: scopes,
		Run: func(p *Pass) {
			for _, f := range p.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil || !forbiddenRandImports[path] {
						continue
					}
					p.Reportf(imp.Pos(),
						"%s imported in privacy-critical package %s: enclave randomness must be unpredictable to the host; inject a crypto/rand-backed source (internal/crand)",
						path, p.Pkg.Path)
				}
			}
		},
	}
}
