package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewLockAcrossSend returns the analyzer flagging a sync.Mutex or RWMutex
// held across a blocking communication point: a channel send or receive, or
// a call to a Send/Recv method (the transport.Conn surface). A blocked
// transport peer must never be able to wedge every goroutine waiting on the
// same lock — the leader fans out to G members concurrently, so one stalled
// member holding a shared mutex across Send serializes (or deadlocks) the
// whole federation round.
//
// The check is block-local, matching the invariant in ISSUE terms: a Lock
// without an intervening Unlock in the same statement list (or with a
// deferred Unlock, which pins the lock for the rest of the function) must
// not be followed by a communication operation in that list or any nested
// control-flow block. Function literals start a fresh context: they run on
// another goroutine's schedule.
func NewLockAcrossSend(scopes []Scope) *Analyzer {
	a := &Analyzer{
		Name:   "lockacrosssend",
		Doc:    "a mutex must not be held across a channel operation or transport Send/Recv",
		Scopes: scopes,
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkLockBlock(p, fn.Body.List, nil)
					}
				case *ast.FuncLit:
					checkLockBlock(p, fn.Body.List, nil)
				}
				return true
			})
		}
	}
	return a
}

// heldLock tracks one acquired mutex within a statement list.
type heldLock struct {
	expr   string    // rendered receiver, e.g. "r.mu"
	pos    token.Pos // the Lock call
	sticky bool      // deferred Unlock: held until function return
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}
var commMethods = map[string]bool{"Send": true, "Recv": true}

// mutexCall matches a niladic method call on a receiver, returning the
// rendered receiver when the method name is in the wanted set and, when type
// information resolves, the receiver is a sync (RW)Mutex or embeds one.
func mutexCall(p *Pass, call *ast.CallExpr, wanted map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !wanted[sel.Sel.Name] || len(call.Args) != 0 {
		return "", false
	}
	if t := receiverType(p, sel); t != nil && !isSyncMutex(t) {
		return "", false
	}
	return types.ExprString(sel.X), true
}

func receiverType(p *Pass, sel *ast.SelectorExpr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	if s, ok := p.Pkg.Info.Selections[sel]; ok {
		return s.Recv()
	}
	if tv, ok := p.Pkg.Info.Types[sel.X]; ok {
		return tv.Type
	}
	return nil
}

func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
		return true
	}
	// Named types that embed a mutex promote Lock/Unlock; treat them as
	// mutexes too.
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Embedded() && isSyncMutex(f.Type()) {
				return true
			}
		}
	}
	return false
}

// checkLockBlock walks one statement list carrying the locks held on entry
// (from enclosing lists). Nested control-flow blocks are analyzed with a
// copy, so conditional acquisitions stay local.
func checkLockBlock(p *Pass, stmts []ast.Stmt, inherited []heldLock) {
	held := append([]heldLock(nil), inherited...)
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if expr, ok := mutexCall(p, call, lockMethods); ok {
					held = append(held, heldLock{expr: expr, pos: call.Pos()})
					continue
				}
				if expr, ok := mutexCall(p, call, unlockMethods); ok {
					held = releaseLock(held, expr)
					continue
				}
			}
		case *ast.DeferStmt:
			if expr, ok := mutexCall(p, s.Call, unlockMethods); ok {
				for i := range held {
					if held[i].expr == expr {
						held[i].sticky = true
					}
				}
				continue
			}
		}
		if len(held) > 0 {
			reportCommOps(p, stmt, held)
		}
		// Recurse into nested statement lists with the current held set.
		for _, body := range nestedBlocks(stmt) {
			checkLockBlock(p, body, held)
		}
	}
}

func releaseLock(held []heldLock, expr string) []heldLock {
	out := held[:0]
	for _, h := range held {
		if h.expr == expr && !h.sticky {
			continue
		}
		out = append(out, h)
	}
	return out
}

// nestedBlocks returns the statement lists a statement contains.
func nestedBlocks(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	add := func(b *ast.BlockStmt) {
		if b != nil {
			out = append(out, b.List)
		}
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		add(s)
	case *ast.IfStmt:
		add(s.Body)
		if els, ok := s.Else.(*ast.BlockStmt); ok {
			add(els)
		} else if els, ok := s.Else.(*ast.IfStmt); ok {
			out = append(out, nestedBlocks(els)...)
		}
	case *ast.ForStmt:
		add(s.Body)
	case *ast.RangeStmt:
		add(s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedBlocks(s.Stmt)...)
	}
	return out
}

// reportCommOps flags channel operations and Send/Recv calls in the
// non-block parts of one statement (nested lists are handled by recursion,
// nested function literals run elsewhere).
func reportCommOps(p *Pass, stmt ast.Stmt, held []heldLock) {
	skip := make(map[ast.Node]bool)
	for _, body := range nestedBlocks(stmt) {
		for _, s := range body {
			skip[s] = true
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if n == nil || skip[n] {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			reportHeld(p, e.Pos(), "channel send", held)
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				reportHeld(p, e.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && commMethods[sel.Sel.Name] {
				reportHeld(p, e.Pos(), "call to "+types.ExprString(sel.X)+"."+sel.Sel.Name, held)
			}
		}
		return true
	})
}

func reportHeld(p *Pass, pos token.Pos, what string, held []heldLock) {
	for _, h := range held {
		p.Reportf(pos, "%s while %s is locked (Lock at %s): a blocked peer stalls every goroutine waiting on the mutex; release before the blocking operation",
			what, h.expr, p.Fset.Position(h.pos))
	}
}
