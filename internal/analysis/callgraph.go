package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// callGraph is the module-wide call-resolution index the taint engine runs
// on: every function body in the module, keyed by its types.Func, plus the
// interface-dispatch relation resolved against the module's own types. It is
// deliberately a *may*-call graph — an interface method call resolves to
// every in-module implementation — because the taint engine must not miss a
// flow the runtime could take.
type callGraph struct {
	// funcs maps every module function and method with a body to its
	// declaration and defining package.
	funcs map[*types.Func]*funcDecl

	// impls maps an in-module interface method to the concrete in-module
	// methods that can stand behind it at a dynamic dispatch site.
	impls map[*types.Func][]*types.Func

	// fullName caches types.Func.FullName, the key used by the taint
	// tables ("fmt.Errorf", "(*gendpr/internal/genome.Matrix).AlleleCounts",
	// "(gendpr/internal/transport.Conn).Send").
	fullName map[*types.Func]string
}

// funcDecl is one analyzable function body.
type funcDecl struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// buildCallGraph indexes the module.
func buildCallGraph(mod *Module) *callGraph {
	cg := &callGraph{
		funcs:    make(map[*types.Func]*funcDecl),
		impls:    make(map[*types.Func][]*types.Func),
		fullName: make(map[*types.Func]string),
	}
	for _, pkg := range mod.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				cg.funcs[obj] = &funcDecl{fn: obj, decl: fd, pkg: pkg}
			}
		}
	}
	cg.buildDispatch(mod)
	return cg
}

// buildDispatch resolves interface dispatch within the module: for every
// named interface type declared in the module and every named type with
// methods, record which concrete methods satisfy each interface method.
func (cg *callGraph) buildDispatch(mod *Module) {
	var ifaces []*types.Named
	var concrete []*types.Named
	for _, pkg := range mod.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				ifaces = append(ifaces, named)
			} else if named.NumMethods() > 0 {
				concrete = append(concrete, named)
			}
		}
	}
	for _, in := range ifaces {
		iface, ok := in.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() == 0 {
			continue
		}
		for _, cn := range concrete {
			// A pointer receiver's method set is the superset; checking *T
			// covers both value and pointer dispatch for taint purposes.
			ptr := types.NewPointer(cn)
			if !types.Implements(ptr, iface) && !types.Implements(cn, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				im := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, cn.Obj().Pkg(), im.Name())
				if m, ok := obj.(*types.Func); ok {
					cg.impls[im] = append(cg.impls[im], m)
				}
			}
		}
	}
	// Deterministic order so diagnostics are stable across runs.
	for im := range cg.impls {
		ms := cg.impls[im]
		sort.Slice(ms, func(i, j int) bool { return cg.name(ms[i]) < cg.name(ms[j]) })
		cg.impls[im] = ms
	}
}

// name returns (and caches) the table key for fn.
func (cg *callGraph) name(fn *types.Func) string {
	if n, ok := cg.fullName[fn]; ok {
		return n
	}
	n := fn.FullName()
	cg.fullName[fn] = n
	return n
}

// callee resolves the callee of a call expression using the package's type
// information. It returns the static callee (nil for calls through function
// values and type conversions) and, when the callee is an interface method,
// the in-module implementations behind it.
func (cg *callGraph) callee(pkg *Package, call *ast.CallExpr) (fn *types.Func, impls []*types.Func) {
	if pkg.Info == nil {
		return nil, nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
				fn, _ = sel.Obj().(*types.Func)
			}
		} else {
			// Qualified reference: pkg.Func.
			fn, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
		}
	}
	if fn == nil {
		return nil, nil
	}
	if isInterfaceMethod(fn) {
		return fn, cg.impls[fn]
	}
	return fn, nil
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// receiverAndArgs returns the expressions whose taint feeds the callee's
// parameter list, receiver first when the call is a method call through a
// selector. For a method *expression* call (T.M(recv, args...)) the receiver
// is already the first argument.
func receiverAndArgs(pkg *Package, call *ast.CallExpr) []ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out := make([]ast.Expr, 0, len(call.Args)+1)
			out = append(out, sel.X)
			return append(out, call.Args...)
		}
	}
	return call.Args
}
