package crand

import (
	"bytes"
	"math"
	"testing"
)

func TestIntnRange(t *testing.T) {
	s := New()
	for _, n := range []int{1, 2, 3, 7, 8, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	s := New()
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			s.Intn(n)
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

// TestIntnUniform is a coarse chi-square sanity check: 3 buckets over many
// draws should not deviate wildly from uniform.
func TestIntnUniform(t *testing.T) {
	s := New()
	const n, draws = 3, 30000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	expect := float64(draws) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// df=2; p<1e-9 would be ~41. Flakiness is negligible.
	if chi2 > 41 {
		t.Fatalf("chi2 %.2f suggests non-uniform Intn: %v", chi2, counts)
	}
}

// TestRejectionSampling feeds a stream whose first 64-bit draw falls in the
// rejected tail for n=3 and verifies the source retries instead of folding
// the biased value in.
func TestRejectionSampling(t *testing.T) {
	// limit for n=3 is (2^64/3)*3 - 1 = 2^64 - 2, so only 2^64-1 rejects.
	buf := append(bytes.Repeat([]byte{0xFF}, 8), 0, 0, 0, 0, 0, 0, 0, 5)
	s := NewFromReader(bytes.NewReader(buf))
	if v := s.Intn(3); v != 5%3 {
		t.Fatalf("rejection sampling: got %d, want %d", v, 5%3)
	}
}

func TestEntropyFailurePanics(t *testing.T) {
	s := NewFromReader(bytes.NewReader(nil)) // immediate EOF
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted entropy source did not panic")
		}
	}()
	s.Uint64()
}

func BenchmarkIntn(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Intn(1024 + i%3) // mix of power-of-two and odd ranges
	}
}
