// Package crand provides cryptographically secure random sources for the
// privacy-critical components. The paper's threat model (Section 4) assumes
// colluding GDOs cannot predict enclave-internal randomness: ORAM leaf
// remapping, oblivious shuffles, and leader election must therefore draw
// from crypto/rand, never from a seeded PRNG an adversary could rewind.
//
// The package exposes the same minimal Intn contract *math/rand.Rand
// satisfies, so tests keep deterministic seeded sources while production
// code injects a Source. The cryptorand static analyzer
// (internal/analysis) enforces that privacy-critical packages never import
// math/rand directly; this package is the sanctioned replacement.
package crand

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"io"
)

// Source draws uniform integers from crypto/rand.Reader through a buffered
// reader, amortizing the read syscall over many small draws (Path ORAM does
// one Intn per access; unbuffered crypto/rand reads would dominate).
//
// Source is NOT safe for concurrent use, matching *math/rand.Rand; callers
// that share one across goroutines must serialize access. ORAM already
// serializes all accesses, so its Source needs no extra locking.
type Source struct {
	r io.Reader
}

// New returns a crypto/rand-backed Source.
func New() *Source {
	return &Source{r: bufio.NewReaderSize(rand.Reader, 512)}
}

// NewFromReader returns a Source drawing from an arbitrary entropy stream.
// It exists for tests that need reproducible "crypto" randomness; production
// code should call New.
func NewFromReader(r io.Reader) *Source {
	return &Source{r: r}
}

// Uint64 returns a uniform 64-bit value. It panics when the entropy source
// fails: crypto/rand.Reader cannot fail on the supported platforms, and a
// privacy-critical component must never continue with degraded randomness.
func (s *Source) Uint64() uint64 {
	var buf [8]byte
	if _, err := io.ReadFull(s.r, buf[:]); err != nil {
		panic("crand: entropy source failed: " + err.Error())
	}
	return binary.BigEndian.Uint64(buf[:])
}

// Intn returns a uniform value in [0, n). It panics when n <= 0, matching
// math/rand. Uniformity uses rejection sampling over the top of the 64-bit
// range, so no modulo bias is introduced.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("crand: Intn with non-positive n")
	}
	un := uint64(n)
	if un&(un-1) == 0 { // power of two: mask is exact
		return int(s.Uint64() & (un - 1))
	}
	// Reject draws from the final partial block so every residue is
	// equally likely. The loop terminates quickly: the rejection
	// probability is < 2^-63 of the range for any n representable here.
	limit := (^uint64(0)/un)*un - 1
	for {
		v := s.Uint64()
		if v <= limit {
			return int(v % un)
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision,
// mirroring math/rand.Float64 for drop-in use by noise mechanisms.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
