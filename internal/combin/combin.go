// Package combin enumerates k-combinations, the primitive behind GenDPR's
// collusion tolerance: with G federation members of which up to f may
// collude, every phase is re-evaluated over each of the C(G, G−f) subsets of
// presumed-honest members (Section 5.6).
package combin

import "fmt"

// Binomial returns C(n, k). It returns an error on invalid input or overflow
// of int64 arithmetic.
func Binomial(n, k int) (int64, error) {
	if n < 0 || k < 0 || k > n {
		return 0, fmt.Errorf("combin: C(%d,%d) undefined", n, k)
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		next := c * int64(n-i)
		if next/int64(n-i) != c {
			return 0, fmt.Errorf("combin: C(%d,%d) overflows int64", n, k)
		}
		c = next / int64(i+1)
	}
	return c, nil
}

// Combinations returns every k-subset of {0,…,n−1} in lexicographic order.
// The result shares no memory between subsets. It returns an error for
// invalid sizes or when the enumeration would be unreasonably large
// (> 1<<20 subsets), which a caller misconfiguring f would otherwise turn
// into an out-of-memory condition inside the enclave.
func Combinations(n, k int) ([][]int, error) {
	count, err := Binomial(n, k)
	if err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("combin: C(%d,%d)=%d subsets exceed the enumeration bound", n, k, count)
	}
	if k == 0 {
		return [][]int{{}}, nil
	}
	out := make([][]int, 0, count)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		sub := make([]int, k)
		copy(sub, idx)
		out = append(out, sub)
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out, nil
}

// HonestSubsets returns the subsets of presumed-honest members for a
// federation of g members tolerating exactly f colluders: all (g−f)-subsets
// of {0,…,g−1}.
func HonestSubsets(g, f int) ([][]int, error) {
	if g <= 0 {
		return nil, fmt.Errorf("combin: federation size %d invalid", g)
	}
	if f < 0 || f >= g {
		return nil, fmt.Errorf("combin: colluder count %d outside [0,%d]", f, g-1)
	}
	return Combinations(g, g-f)
}

// ConservativeSubsets returns the union of HonestSubsets(g, f) for every
// f in 1..g−1 — the paper's "most conservative" mode evaluating
// Σ_{f=1}^{G−1} C(G, G−f) combinations.
func ConservativeSubsets(g int) ([][]int, error) {
	if g <= 1 {
		return nil, fmt.Errorf("combin: conservative mode needs g > 1, got %d", g)
	}
	var out [][]int
	for f := 1; f < g; f++ {
		subs, err := HonestSubsets(g, f)
		if err != nil {
			return nil, err
		}
		out = append(out, subs...)
	}
	return out, nil
}
