// Package combin enumerates k-combinations, the primitive behind GenDPR's
// collusion tolerance: with G federation members of which up to f may
// collude, every phase is re-evaluated over each of the C(G, G−f) subsets of
// presumed-honest members (Section 5.6).
//
// Two enumeration orders are provided. Iter visits subsets lexicographically
// — the order results are reported and checkpointed in. RevolvingDoor visits
// the same subsets in a Gray-code order where consecutive subsets differ by
// exactly one exchanged member, which is what lets the assessment driver
// evaluate a subset incrementally from its predecessor instead of from
// scratch.
package combin

import (
	"fmt"
	"math"
	"math/bits"
)

// Binomial returns C(n, k). It returns an error on invalid input or when the
// result overflows int64. Intermediate products are computed in 128 bits, so
// every representable C(n, k) is returned exactly — the guard rejects only
// results that genuinely exceed int64 (the seed implementation checked the
// 64-bit product before dividing and so rejected representable values like
// C(66, 33)).
func Binomial(n, k int) (int64, error) {
	if n < 0 || k < 0 || k > n {
		return 0, fmt.Errorf("combin: C(%d,%d) undefined", n, k)
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := 0; i < k; i++ {
		// c holds C(n, i); the next value is c*(n-i)/(i+1), exact because
		// C(n, i+1) is an integer. The 128-bit product keeps the intermediate
		// exact; Div64 requires hi < divisor, which also detects quotients
		// beyond 64 bits.
		hi, lo := bits.Mul64(c, uint64(n-i))
		if hi >= uint64(i+1) {
			return 0, fmt.Errorf("combin: C(%d,%d) overflows int64", n, k)
		}
		q, _ := bits.Div64(hi, lo, uint64(i+1))
		c = q
	}
	if c > math.MaxInt64 {
		return 0, fmt.Errorf("combin: C(%d,%d) overflows int64", n, k)
	}
	return int64(c), nil
}

func validateSizes(n, k int) error {
	if n < 0 || k < 0 || k > n {
		return fmt.Errorf("combin: C(%d,%d) undefined", n, k)
	}
	return nil
}

// Iter streams every k-subset of {0,…,n−1} in lexicographic order without
// materializing the enumeration. The yielded slice is reused between calls
// and must be copied if retained. Iteration stops early when fn returns an
// error, which is returned unchanged.
func Iter(n, k int, fn func(sub []int) error) error {
	if err := validateSizes(n, k); err != nil {
		return err
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if err := fn(idx); err != nil {
			return err
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// RevolvingDoor streams every k-subset of {0,…,n−1} in revolving-door Gray
// order: consecutive subsets differ by exactly one exchange, reported as the
// (removed, added) member pair. The first call yields the lexicographically
// first subset {0,…,k−1} with removed = added = −1. The yielded subset is
// sorted ascending, reused between calls, and must be copied if retained.
// Iteration stops early when fn returns an error, which is returned
// unchanged.
//
// The order is the classic recursive scheme A(n,k) = A(n−1,k) followed by
// reverse(A(n−1,k−1)) with n−1 appended: both seams exchange a single
// member, so a consumer can maintain per-subset state by applying one
// member's contribution delta per step.
func RevolvingDoor(n, k int, fn func(sub []int, removed, added int) error) error {
	if err := validateSizes(n, k); err != nil {
		return err
	}
	cur := make([]int, k)
	for i := range cur {
		cur[i] = i
	}
	if err := fn(cur, -1, -1); err != nil {
		return err
	}
	g := doorGen{cur: cur, fn: fn}
	return g.walk(n, k, true)
}

// doorGen carries the revolving-door recursion state: cur is the current
// subset, kept sorted, and every exchange step reports through fn.
type doorGen struct {
	cur []int
	fn  func(sub []int, removed, added int) error
}

// step exchanges removed for added in the sorted current subset and yields.
func (g *doorGen) step(removed, added int) error {
	i := 0
	for g.cur[i] != removed {
		i++
	}
	// Slide the gap toward added's sorted position.
	for i+1 < len(g.cur) && g.cur[i+1] < added {
		g.cur[i] = g.cur[i+1]
		i++
	}
	for i > 0 && g.cur[i-1] > added {
		g.cur[i] = g.cur[i-1]
		i--
	}
	g.cur[i] = added
	return g.fn(g.cur, removed, added)
}

// walk emits the exchange steps that traverse A(n,k) forward from its first
// subset {0,…,k−1} (fwd) or backward from its last subset {0,…,k−2, n−1}
// (!fwd), assuming cur currently holds that endpoint. A(n,0) and A(n,n) are
// single subsets, so they emit no steps.
func (g *doorGen) walk(n, k int, fwd bool) error {
	if k == 0 || k == n {
		return nil
	}
	// The seam between A(n−1,k) (ending {0,…,k−2, n−2}) and
	// reverse(A(n−1,k−1))+{n−1} (starting {0,…,k−3, n−2, n−1}) exchanges
	// one member: k−2 out, n−1 in (for k == 1: n−2 out, n−1 in).
	out := k - 2
	if k == 1 {
		out = n - 2
	}
	if fwd {
		if err := g.walk(n-1, k, true); err != nil {
			return err
		}
		if err := g.step(out, n-1); err != nil {
			return err
		}
		return g.walk(n-1, k-1, false)
	}
	if err := g.walk(n-1, k-1, true); err != nil {
		return err
	}
	if err := g.step(n-1, out); err != nil {
		return err
	}
	return g.walk(n-1, k, false)
}

// Combinations returns every k-subset of {0,…,n−1} in lexicographic order.
// The result shares no memory between subsets. It returns an error for
// invalid sizes or when the enumeration would be unreasonably large
// (> 1<<20 subsets), which a caller misconfiguring f would otherwise turn
// into an out-of-memory condition inside the enclave. Callers that only need
// to stream the subsets should use Iter, which has no such bound.
func Combinations(n, k int) ([][]int, error) {
	count, err := Binomial(n, k)
	if err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("combin: C(%d,%d)=%d subsets exceed the enumeration bound", n, k, count)
	}
	out := make([][]int, 0, count)
	err = Iter(n, k, func(sub []int) error {
		out = append(out, append([]int(nil), sub...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LexRank returns the position of a sorted k-subset of {0,…,n−1} in the
// lexicographic enumeration Iter visits — the combinatorial number system.
// The revolving-door driver uses it to map Gray-order evaluation back onto
// lexicographic result slots.
func LexRank(n int, sub []int) (int64, error) {
	k := len(sub)
	if err := validateSizes(n, k); err != nil {
		return 0, err
	}
	var rank int64
	prev := -1
	for i, c := range sub {
		if c <= prev || c >= n {
			return 0, fmt.Errorf("combin: subset %v is not a sorted subset of {0..%d}", sub, n-1)
		}
		for v := prev + 1; v < c; v++ {
			// Subsets whose element i is v < c precede sub; the remaining
			// k−1−i elements come from {v+1,…,n−1}.
			c2, err := Binomial(n-1-v, k-1-i)
			if err != nil {
				return 0, err
			}
			rank += c2
		}
		prev = c
	}
	return rank, nil
}

// HonestSubsets returns the subsets of presumed-honest members for a
// federation of g members tolerating exactly f colluders: all (g−f)-subsets
// of {0,…,g−1}.
func HonestSubsets(g, f int) ([][]int, error) {
	if g <= 0 {
		return nil, fmt.Errorf("combin: federation size %d invalid", g)
	}
	if f < 0 || f >= g {
		return nil, fmt.Errorf("combin: colluder count %d outside [0,%d]", f, g-1)
	}
	return Combinations(g, g-f)
}

// ConservativeSubsets returns the union of HonestSubsets(g, f) for every
// f in 1..g−1 — the paper's "most conservative" mode evaluating
// Σ_{f=1}^{G−1} C(G, G−f) combinations.
func ConservativeSubsets(g int) ([][]int, error) {
	if g <= 1 {
		return nil, fmt.Errorf("combin: conservative mode needs g > 1, got %d", g)
	}
	var out [][]int
	for f := 1; f < g; f++ {
		subs, err := HonestSubsets(g, f)
		if err != nil {
			return nil, err
		}
		out = append(out, subs...)
	}
	return out, nil
}
