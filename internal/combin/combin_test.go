package combin

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestBinomialKnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {7, 3, 35},
		{10, 5, 252}, {30, 15, 155117520}, {5, 1, 5},
	}
	for _, tc := range cases {
		got, err := Binomial(tc.n, tc.k)
		if err != nil {
			t.Fatalf("C(%d,%d): %v", tc.n, tc.k, err)
		}
		if got != tc.want {
			t.Errorf("C(%d,%d)=%d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialErrors(t *testing.T) {
	for _, tc := range [][2]int{{-1, 0}, {3, -1}, {3, 4}} {
		if _, err := Binomial(tc[0], tc[1]); err == nil {
			t.Errorf("C(%d,%d) must fail", tc[0], tc[1])
		}
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		n := int(rawN%25) + 2
		k := int(rawK) % n
		if k == 0 {
			return true
		}
		a, err1 := Binomial(n-1, k-1)
		b, err2 := Binomial(n-1, k)
		c, err3 := Binomial(n, k)
		return err1 == nil && err2 == nil && err3 == nil && a+b == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCombinationsExhaustive(t *testing.T) {
	got, err := Combinations(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d combinations, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("combination %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestCombinationsCounts(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for k := 0; k <= n; k++ {
			subs, err := Combinations(n, k)
			if err != nil {
				t.Fatalf("Combinations(%d,%d): %v", n, k, err)
			}
			want, _ := Binomial(n, k)
			if int64(len(subs)) != want {
				t.Errorf("Combinations(%d,%d) yielded %d, want %d", n, k, len(subs), want)
			}
			seen := map[string]bool{}
			for _, s := range subs {
				if len(s) != k {
					t.Fatalf("subset %v has size %d, want %d", s, len(s), k)
				}
				key := ""
				prev := -1
				for _, v := range s {
					if v <= prev || v < 0 || v >= n {
						t.Fatalf("subset %v not strictly increasing in range", s)
					}
					prev = v
					key += string(rune('a' + v))
				}
				if seen[key] {
					t.Fatalf("duplicate subset %v", s)
				}
				seen[key] = true
			}
		}
	}
}

func TestCombinationsBound(t *testing.T) {
	if _, err := Combinations(60, 30); err == nil {
		t.Fatal("oversized enumeration must fail")
	}
}

func TestCombinationsNoAliasing(t *testing.T) {
	subs, err := Combinations(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	subs[0][0] = 99
	if subs[1][0] == 99 {
		t.Fatal("subsets share backing memory")
	}
}

func TestHonestSubsets(t *testing.T) {
	subs, err := HonestSubsets(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Binomial(5, 3)
	if int64(len(subs)) != want {
		t.Errorf("got %d subsets, want %d", len(subs), want)
	}
	if _, err := HonestSubsets(3, 3); err == nil {
		t.Error("f=g must fail")
	}
	if _, err := HonestSubsets(3, -1); err == nil {
		t.Error("negative f must fail")
	}
	if _, err := HonestSubsets(0, 0); err == nil {
		t.Error("empty federation must fail")
	}
	// f = 0 is the no-collusion case: one subset containing everyone.
	all, err := HonestSubsets(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || len(all[0]) != 4 {
		t.Errorf("f=0 subsets = %v", all)
	}
}

func TestConservativeSubsets(t *testing.T) {
	subs, err := ConservativeSubsets(4)
	if err != nil {
		t.Fatal(err)
	}
	// Σ_{f=1}^{3} C(4, 4−f) = C(4,3)+C(4,2)+C(4,1) = 4+6+4 = 14.
	if len(subs) != 14 {
		t.Errorf("got %d subsets, want 14", len(subs))
	}
	if _, err := ConservativeSubsets(1); err == nil {
		t.Error("g=1 must fail")
	}
}

func TestBinomialBoundary(t *testing.T) {
	// C(66,33) is the largest central binomial coefficient representable in
	// int64; the seed implementation's overflow guard checked the 64-bit
	// intermediate product and falsely rejected it.
	got, err := Binomial(66, 33)
	if err != nil {
		t.Fatalf("C(66,33): %v", err)
	}
	if want := int64(7219428434016265740); got != want {
		t.Errorf("C(66,33)=%d, want %d", got, want)
	}
	// One row further the value genuinely exceeds int64.
	for _, tc := range [][2]int{{67, 33}, {67, 34}, {67, 30}, {68, 34}, {100, 50}} {
		if _, err := Binomial(tc[0], tc[1]); err == nil {
			t.Errorf("C(%d,%d) must overflow", tc[0], tc[1])
		}
	}
	// Asymmetric cases near the boundary still work exactly.
	if got, err := Binomial(67, 29); err != nil || got != 7886597962249166160 {
		t.Errorf("C(67,29)=%d (%v), want 7886597962249166160", got, err)
	}
	if got, err := Binomial(70, 25); err != nil || got != 6455761770304780752 {
		t.Errorf("C(70,25)=%d (%v), want 6455761770304780752", got, err)
	}
}

func TestIterMatchesCombinations(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n; k++ {
			want, err := Combinations(n, k)
			if err != nil {
				t.Fatal(err)
			}
			i := 0
			err = Iter(n, k, func(sub []int) error {
				if i >= len(want) {
					t.Fatalf("Iter(%d,%d) yielded more than %d subsets", n, k, len(want))
				}
				for j := range sub {
					if sub[j] != want[i][j] {
						t.Fatalf("Iter(%d,%d) subset %d = %v, want %v", n, k, i, sub, want[i])
					}
				}
				i++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if i != len(want) {
				t.Fatalf("Iter(%d,%d) yielded %d subsets, want %d", n, k, i, len(want))
			}
		}
	}
}

func TestIterEarlyStop(t *testing.T) {
	wantErr := errStop
	n := 0
	err := Iter(5, 2, func([]int) error {
		n++
		if n == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr || n != 3 {
		t.Fatalf("early stop: err=%v after %d subsets", err, n)
	}
}

func TestRevolvingDoorVisitsLexSet(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n; k++ {
			lex, err := Combinations(n, k)
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]bool{}
			for _, s := range lex {
				want[subsetKey(s)] = true
			}
			var prev []int
			count := 0
			err = RevolvingDoor(n, k, func(sub []int, removed, added int) error {
				count++
				// Sorted, in range, no duplicates.
				last := -1
				for _, v := range sub {
					if v <= last || v < 0 || v >= n {
						t.Fatalf("RevolvingDoor(%d,%d) subset %v not sorted in range", n, k, sub)
					}
					last = v
				}
				key := subsetKey(sub)
				if !want[key] {
					t.Fatalf("RevolvingDoor(%d,%d) repeated or foreign subset %v", n, k, sub)
				}
				delete(want, key)
				if prev == nil {
					if removed != -1 || added != -1 {
						t.Fatalf("first subset reported delta (%d,%d)", removed, added)
					}
					for i, v := range sub {
						if v != i {
							t.Fatalf("first subset %v, want {0..%d}", sub, k-1)
						}
					}
				} else {
					if err := checkExchange(prev, sub, removed, added); err != nil {
						t.Fatalf("RevolvingDoor(%d,%d): %v", n, k, err)
					}
				}
				prev = append(prev[:0], sub...)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if count != len(lex) || len(want) != 0 {
				t.Fatalf("RevolvingDoor(%d,%d) visited %d subsets, want %d (missed %d)", n, k, count, len(lex), len(want))
			}
		}
	}
}

// checkExchange verifies that cur is prev with exactly removed swapped out
// and added swapped in.
func checkExchange(prev, cur []int, removed, added int) error {
	have := map[int]bool{}
	for _, v := range cur {
		have[v] = true
	}
	if have[removed] || !have[added] {
		return errExchange(prev, cur, removed, added)
	}
	diff := 0
	for _, v := range prev {
		if !have[v] {
			diff++
			if v != removed {
				return errExchange(prev, cur, removed, added)
			}
		}
	}
	if diff != 1 {
		return errExchange(prev, cur, removed, added)
	}
	return nil
}

func TestRevolvingDoorEarlyStop(t *testing.T) {
	n := 0
	err := RevolvingDoor(6, 3, func([]int, int, int) error {
		n++
		if n == 4 {
			return errStop
		}
		return nil
	})
	if err != errStop || n != 4 {
		t.Fatalf("early stop: err=%v after %d subsets", err, n)
	}
}

func TestLexRank(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n; k++ {
			lex, err := Combinations(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range lex {
				r, err := LexRank(n, s)
				if err != nil {
					t.Fatalf("LexRank(%d, %v): %v", n, s, err)
				}
				if r != int64(i) {
					t.Errorf("LexRank(%d, %v)=%d, want %d", n, s, r, i)
				}
			}
		}
	}
	if _, err := LexRank(4, []int{2, 1}); err == nil {
		t.Error("unsorted subset must fail")
	}
	if _, err := LexRank(4, []int{1, 4}); err == nil {
		t.Error("out-of-range subset must fail")
	}
}

// errStop is a sentinel for early-termination tests.
var errStop = fmt.Errorf("stop")

func subsetKey(s []int) string {
	key := ""
	for _, v := range s {
		key += string(rune('a'+v)) + ","
	}
	return key
}

func errExchange(prev, cur []int, removed, added int) error {
	return fmt.Errorf("step %v -> %v is not the single exchange (-%d,+%d)", prev, cur, removed, added)
}
