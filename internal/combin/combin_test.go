package combin

import (
	"testing"
	"testing/quick"
)

func TestBinomialKnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {7, 3, 35},
		{10, 5, 252}, {30, 15, 155117520}, {5, 1, 5},
	}
	for _, tc := range cases {
		got, err := Binomial(tc.n, tc.k)
		if err != nil {
			t.Fatalf("C(%d,%d): %v", tc.n, tc.k, err)
		}
		if got != tc.want {
			t.Errorf("C(%d,%d)=%d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialErrors(t *testing.T) {
	for _, tc := range [][2]int{{-1, 0}, {3, -1}, {3, 4}} {
		if _, err := Binomial(tc[0], tc[1]); err == nil {
			t.Errorf("C(%d,%d) must fail", tc[0], tc[1])
		}
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		n := int(rawN%25) + 2
		k := int(rawK) % n
		if k == 0 {
			return true
		}
		a, err1 := Binomial(n-1, k-1)
		b, err2 := Binomial(n-1, k)
		c, err3 := Binomial(n, k)
		return err1 == nil && err2 == nil && err3 == nil && a+b == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCombinationsExhaustive(t *testing.T) {
	got, err := Combinations(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d combinations, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("combination %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestCombinationsCounts(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for k := 0; k <= n; k++ {
			subs, err := Combinations(n, k)
			if err != nil {
				t.Fatalf("Combinations(%d,%d): %v", n, k, err)
			}
			want, _ := Binomial(n, k)
			if int64(len(subs)) != want {
				t.Errorf("Combinations(%d,%d) yielded %d, want %d", n, k, len(subs), want)
			}
			seen := map[string]bool{}
			for _, s := range subs {
				if len(s) != k {
					t.Fatalf("subset %v has size %d, want %d", s, len(s), k)
				}
				key := ""
				prev := -1
				for _, v := range s {
					if v <= prev || v < 0 || v >= n {
						t.Fatalf("subset %v not strictly increasing in range", s)
					}
					prev = v
					key += string(rune('a' + v))
				}
				if seen[key] {
					t.Fatalf("duplicate subset %v", s)
				}
				seen[key] = true
			}
		}
	}
}

func TestCombinationsBound(t *testing.T) {
	if _, err := Combinations(60, 30); err == nil {
		t.Fatal("oversized enumeration must fail")
	}
}

func TestCombinationsNoAliasing(t *testing.T) {
	subs, err := Combinations(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	subs[0][0] = 99
	if subs[1][0] == 99 {
		t.Fatal("subsets share backing memory")
	}
}

func TestHonestSubsets(t *testing.T) {
	subs, err := HonestSubsets(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Binomial(5, 3)
	if int64(len(subs)) != want {
		t.Errorf("got %d subsets, want %d", len(subs), want)
	}
	if _, err := HonestSubsets(3, 3); err == nil {
		t.Error("f=g must fail")
	}
	if _, err := HonestSubsets(3, -1); err == nil {
		t.Error("negative f must fail")
	}
	if _, err := HonestSubsets(0, 0); err == nil {
		t.Error("empty federation must fail")
	}
	// f = 0 is the no-collusion case: one subset containing everyone.
	all, err := HonestSubsets(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || len(all[0]) != 4 {
		t.Errorf("f=0 subsets = %v", all)
	}
}

func TestConservativeSubsets(t *testing.T) {
	subs, err := ConservativeSubsets(4)
	if err != nil {
		t.Fatal(err)
	}
	// Σ_{f=1}^{3} C(4, 4−f) = C(4,3)+C(4,2)+C(4,1) = 4+6+4 = 14.
	if len(subs) != 14 {
		t.Errorf("got %d subsets, want 14", len(subs))
	}
	if _, err := ConservativeSubsets(1); err == nil {
		t.Error("g=1 must fail")
	}
}
