package federation

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
	"gendpr/internal/vcf"
)

// Result bundles the leader's report with which member was elected leader.
type Result struct {
	Report      *core.Report
	LeaderIndex int
	// MemberSelections holds the selection each member received via the
	// final broadcast, indexed by shard position (nil for the leader's own
	// slot, which holds the report directly).
	MemberSelections []*core.Selection
	// Traffic reports what actually crossed the attested channels.
	Traffic TrafficStats
}

// TrafficStats quantifies the paper's Section 7.1 bandwidth claim: members
// exchange encrypted intermediates instead of genome files.
type TrafficStats struct {
	// PerMemberBytes is the wire traffic (both directions, ciphertext) on
	// each member's channel, indexed by shard position; the leader's own
	// slot is zero.
	PerMemberBytes []int64
	// TotalBytes sums all channels.
	TotalBytes int64
	// TotalMessages counts protocol messages in both directions.
	TotalMessages int64
	// GenomeShipBytes is what centralizing would have cost instead: the
	// exact VCF-encoded size of every non-leader genotype shard (the paper
	// compares against shipping variant files).
	GenomeShipBytes int64
	// GenomePackedBytes is the bit-packed lower bound for the same shards
	// (2 bits per diploid genotype in the paper's accounting; 1 bit in this
	// library's haploid encoding).
	GenomePackedBytes int64
}

// SavingsFactor returns how many times cheaper the protocol traffic is than
// shipping the genomes (0 when nothing was exchanged).
func (t TrafficStats) SavingsFactor() float64 {
	if t.TotalBytes == 0 {
		return 0
	}
	return float64(t.GenomeShipBytes) / float64(t.TotalBytes)
}

// randomNonces draws one leader-election contribution per member.
func randomNonces(g int) ([][]byte, error) {
	nonces := make([][]byte, g)
	for i := range nonces {
		n := make([]byte, 16)
		if _, err := io.ReadFull(rand.Reader, n); err != nil {
			return nil, fmt.Errorf("federation: election nonce: %w", err)
		}
		nonces[i] = n
	}
	return nonces, nil
}

// RunInProcess assembles a complete federation inside one process: one
// platform and enclave per shard, random leader election, attested in-memory
// channels, and a full protocol run. It is the reference deployment used by
// tests, examples and benchmarks; RunOverTCP exercises the same nodes across
// real sockets.
func RunInProcess(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy) (*Result, error) {
	g := len(shards)
	if g == 0 {
		return nil, core.ErrNoMembers
	}
	authority, err := attest.NewAuthority()
	if err != nil {
		return nil, fmt.Errorf("federation: %w", err)
	}
	nonces, err := randomNonces(g)
	if err != nil {
		return nil, err
	}
	leaderIdx, err := ElectLeader(nonces, g)
	if err != nil {
		return nil, err
	}

	leaderPlatform, err := enclave.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("federation: %w", err)
	}
	leader, err := NewLeader(fmt.Sprintf("gdo-%d", leaderIdx), shards[leaderIdx], leaderPlatform, authority)
	if err != nil {
		return nil, err
	}

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		serveErrs  []error
		members    = make([]*Member, 0, g-1)
		leaderEnds = make([]transport.Conn, 0, g-1)
		meters     = make([]*transport.Meter, g)
	)
	for i := 0; i < g; i++ {
		if i == leaderIdx {
			continue
		}
		platform, err := enclave.NewPlatform()
		if err != nil {
			return nil, fmt.Errorf("federation: %w", err)
		}
		member, err := NewMember(fmt.Sprintf("gdo-%d", i), shards[i], platform, authority)
		if err != nil {
			return nil, err
		}
		members = append(members, member)
		leaderEnd, memberEnd := transport.Pipe()
		meters[i] = &transport.Meter{}
		leaderEnds = append(leaderEnds, transport.NewMetered(leaderEnd, meters[i]))
		wg.Add(1)
		go func(m *Member, conn transport.Conn) {
			defer wg.Done()
			if err := m.Serve(conn); err != nil {
				mu.Lock()
				serveErrs = append(serveErrs, err)
				mu.Unlock()
			}
		}(member, memberEnd)
	}

	report, runErr := leader.Run(leaderEnds, reference, cfg, policy)
	for _, c := range leaderEnds {
		_ = c.Close()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if len(serveErrs) > 0 {
		return nil, errors.Join(serveErrs...)
	}

	res := &Result{
		Report:           report,
		LeaderIndex:      leaderIdx,
		MemberSelections: make([]*core.Selection, g),
		Traffic:          trafficStats(meters, shards, leaderIdx),
	}
	memberAt := 0
	for i := 0; i < g; i++ {
		if i == leaderIdx {
			continue
		}
		res.MemberSelections[i] = members[memberAt].LastResult()
		memberAt++
	}
	return res, nil
}

// trafficStats folds the per-channel meters into the result summary.
func trafficStats(meters []*transport.Meter, shards []*genome.Matrix, leaderIdx int) TrafficStats {
	stats := TrafficStats{PerMemberBytes: make([]int64, len(meters))}
	for i, m := range meters {
		if m == nil {
			continue
		}
		stats.PerMemberBytes[i] = m.TotalBytes()
		stats.TotalBytes += m.TotalBytes()
		stats.TotalMessages += m.SentMessages() + m.RecvMessages()
	}
	for i, s := range shards {
		if i != leaderIdx {
			stats.GenomeShipBytes += vcf.EstimateBytes(s)
			stats.GenomePackedBytes += s.SizeBytes()
		}
	}
	return stats
}

// RunOverTCP runs the same federation across loopback TCP sockets: each
// member listens on an ephemeral port and serves one leader connection.
func RunOverTCP(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy) (*Result, error) {
	g := len(shards)
	if g == 0 {
		return nil, core.ErrNoMembers
	}
	authority, err := attest.NewAuthority()
	if err != nil {
		return nil, fmt.Errorf("federation: %w", err)
	}
	nonces, err := randomNonces(g)
	if err != nil {
		return nil, err
	}
	leaderIdx, err := ElectLeader(nonces, g)
	if err != nil {
		return nil, err
	}

	leaderPlatform, err := enclave.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("federation: %w", err)
	}
	leader, err := NewLeader(fmt.Sprintf("gdo-%d", leaderIdx), shards[leaderIdx], leaderPlatform, authority)
	if err != nil {
		return nil, err
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		serveErrs []error
		members   = make([]*Member, 0, g-1)
		conns     = make([]transport.Conn, 0, g-1)
		listeners = make([]*transport.Listener, 0, g-1)
		meters    = make([]*transport.Meter, g)
	)
	defer func() {
		for _, l := range listeners {
			_ = l.Close()
		}
	}()

	for i := 0; i < g; i++ {
		if i == leaderIdx {
			continue
		}
		platform, err := enclave.NewPlatform()
		if err != nil {
			return nil, fmt.Errorf("federation: %w", err)
		}
		member, err := NewMember(fmt.Sprintf("gdo-%d", i), shards[i], platform, authority)
		if err != nil {
			return nil, err
		}
		members = append(members, member)

		listener, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, listener)
		wg.Add(1)
		go func(m *Member, l *transport.Listener) {
			defer wg.Done()
			conn, err := l.Accept()
			if err != nil {
				mu.Lock()
				serveErrs = append(serveErrs, err)
				mu.Unlock()
				return
			}
			defer conn.Close()
			if err := m.Serve(conn); err != nil {
				mu.Lock()
				serveErrs = append(serveErrs, err)
				mu.Unlock()
			}
		}(member, listener)

		conn, err := transport.Dial(listener.Addr())
		if err != nil {
			return nil, err
		}
		meters[i] = &transport.Meter{}
		conns = append(conns, transport.NewMetered(conn, meters[i]))
	}

	report, runErr := leader.Run(conns, reference, cfg, policy)
	for _, c := range conns {
		_ = c.Close()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if len(serveErrs) > 0 {
		return nil, errors.Join(serveErrs...)
	}

	res := &Result{
		Report:           report,
		LeaderIndex:      leaderIdx,
		MemberSelections: make([]*core.Selection, g),
		Traffic:          trafficStats(meters, shards, leaderIdx),
	}
	memberAt := 0
	for i := 0; i < g; i++ {
		if i == leaderIdx {
			continue
		}
		res.MemberSelections[i] = members[memberAt].LastResult()
		memberAt++
	}
	return res, nil
}
