package federation

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
	"gendpr/internal/vcf"
)

// Result bundles the leader's report with which member was elected leader.
type Result struct {
	Report      *core.Report
	LeaderIndex int
	// MemberSelections holds the selection each member received via the
	// final broadcast, indexed by shard position (nil for the leader's own
	// slot, which holds the report directly).
	MemberSelections []*core.Selection
	// Traffic reports what actually crossed the attested channels.
	Traffic TrafficStats
	// Excluded lists the shard positions of members that failed and were
	// excluded under quorum degradation (empty unless RunOptions.MinQuorum
	// allowed the run to degrade).
	Excluded []int
	// Rejoined lists the shard positions of members that were excluded
	// mid-run and re-admitted at a later phase boundary under
	// RunOptions.AllowRejoin. A rejoined member never appears in Excluded.
	Rejoined []int
	// FormerLeaders lists, oldest first, the shard positions of leaders that
	// died mid-run and were replaced by re-election before this result was
	// produced. Empty unless the failover runner had to re-elect.
	FormerLeaders []int
}

// TrafficStats quantifies the paper's Section 7.1 bandwidth claim: members
// exchange encrypted intermediates instead of genome files.
type TrafficStats struct {
	// PerMemberBytes is the wire traffic (both directions, ciphertext) on
	// each member's channel, indexed by shard position; the leader's own
	// slot is zero.
	PerMemberBytes []int64
	// TotalBytes sums all channels.
	TotalBytes int64
	// TotalMessages counts protocol messages in both directions.
	TotalMessages int64
	// GenomeShipBytes is what centralizing would have cost instead: the
	// exact VCF-encoded size of every non-leader genotype shard (the paper
	// compares against shipping variant files).
	GenomeShipBytes int64
	// GenomePackedBytes is the bit-packed lower bound for the same shards
	// (2 bits per diploid genotype in the paper's accounting; 1 bit in this
	// library's haploid encoding).
	GenomePackedBytes int64
}

// SavingsFactor returns how many times cheaper the protocol traffic is than
// shipping the genomes (0 when nothing was exchanged).
func (t TrafficStats) SavingsFactor() float64 {
	if t.TotalBytes == 0 {
		return 0
	}
	return float64(t.GenomeShipBytes) / float64(t.TotalBytes)
}

// randomNonces draws one leader-election contribution per member.
func randomNonces(g int) ([][]byte, error) {
	nonces := make([][]byte, g)
	for i := range nonces {
		n := make([]byte, 16)
		if _, err := io.ReadFull(rand.Reader, n); err != nil {
			return nil, fmt.Errorf("federation: election nonce: %w", err)
		}
		nonces[i] = n
	}
	return nonces, nil
}

// electedLeader runs the shared setup of both runners: authority, election,
// and leader construction.
func electedLeader(shards []*genome.Matrix) (*Leader, *attest.Authority, int, error) {
	g := len(shards)
	if g == 0 {
		return nil, nil, 0, core.ErrNoMembers
	}
	authority, err := attest.NewAuthority()
	if err != nil {
		return nil, nil, 0, fmt.Errorf("federation: %w", err)
	}
	nonces, err := randomNonces(g)
	if err != nil {
		return nil, nil, 0, err
	}
	leaderIdx, err := ElectLeader(nonces, g)
	if err != nil {
		return nil, nil, 0, err
	}
	leaderPlatform, err := enclave.NewPlatform()
	if err != nil {
		return nil, nil, 0, fmt.Errorf("federation: %w", err)
	}
	leader, err := NewLeader(fmt.Sprintf("gdo-%d", leaderIdx), shards[leaderIdx], leaderPlatform, authority)
	if err != nil {
		return nil, nil, 0, err
	}
	return leader, authority, leaderIdx, nil
}

// assembleResult maps the leader's report back to shard positions.
func assembleResult(report *core.Report, leaderIdx int, g int, members []*Member, memberShards []int, meters []*transport.Meter, shards []*genome.Matrix) *Result {
	res := &Result{
		Report:           report,
		LeaderIndex:      leaderIdx,
		MemberSelections: make([]*core.Selection, g),
		Traffic:          trafficStats(meters, shards, leaderIdx),
	}
	for j, shardIdx := range memberShards {
		res.MemberSelections[shardIdx] = members[j].LastResult()
	}
	// Report.Excluded uses provider indices (0 = leader's shard); translate
	// to shard positions for the federation-level view.
	for _, e := range report.Excluded {
		if e >= 1 && e <= len(memberShards) {
			res.Excluded = append(res.Excluded, memberShards[e-1])
		}
	}
	for _, e := range report.Rejoined {
		if e >= 1 && e <= len(memberShards) {
			res.Rejoined = append(res.Rejoined, memberShards[e-1])
		}
	}
	return res
}

// RunInProcess assembles a complete federation inside one process: one
// platform and enclave per shard, random leader election, attested in-memory
// channels, and a full protocol run. It is the reference deployment used by
// tests, examples and benchmarks; RunOverTCP exercises the same nodes across
// real sockets.
func RunInProcess(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy) (*Result, error) {
	return runInProcess(shards, reference, cfg, policy, RunOptions{}, true)
}

// RunInProcessWithOptions is RunInProcess under the fault-tolerance options:
// deadlines on every exchange, automatic re-establishment of dropped member
// channels (a fresh pipe and serving goroutine, re-attested), and quorum
// degradation. Member serving errors do not fail the run — the leader's
// report, including its excluded-member list, is authoritative.
func RunInProcessWithOptions(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions) (*Result, error) {
	return runInProcess(shards, reference, cfg, policy, opts, false)
}

// faultInjector optionally wraps the leader end of each member channel; the
// chaos harness installs one via the package-internal test hook.
type faultInjector func(shardIdx int, conn transport.Conn) transport.Conn

// memberPrep optionally adjusts a freshly built member node before it starts
// serving — the chaos harness uses it to install a Byzantine provider
// wrapper via Member.WrapProvider. Production runs pass nil.
type memberPrep func(shardIdx int, m *Member)

func runInProcess(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions, strict bool) (*Result, error) {
	return runInProcessInjected(shards, reference, cfg, policy, opts, strict, nil)
}

// runInProcessInjected is runInProcess with a fault-injection hook on the
// leader-side connections (nil for production use). Injectors wrap the raw
// end, below attestation and encryption, so injected faults exercise the
// full recovery path including re-attestation.
func runInProcessInjected(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions, strict bool, inject faultInjector) (*Result, error) {
	return runInProcessPrepared(shards, reference, cfg, policy, opts, strict, inject, nil)
}

// runInProcessPrepared is runInProcessInjected with an additional member
// preparation hook, the deepest of the chaos-harness entry points.
func runInProcessPrepared(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions, strict bool, inject faultInjector, prep memberPrep) (*Result, error) {
	leader, authority, leaderIdx, err := electedLeader(shards)
	if err != nil {
		return nil, err
	}
	return runWithLeader(nil, leader, authority, leaderIdx, shards, reference, cfg, policy, opts, strict, inject, prep)
}

// runWithLeader executes one in-process federation run under an
// already-elected leader: it spawns the member nodes, wires the pipes, and
// drives the protocol. The failover runner calls it repeatedly — once per
// elected leader — with a cancellable context standing in for the leader's
// process lifetime.
func runWithLeader(ctx context.Context, leader *Leader, authority *attest.Authority, leaderIdx int, shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions, strict bool, inject faultInjector, prep memberPrep) (*Result, error) {
	g := len(shards)

	var (
		wg           sync.WaitGroup
		mu           sync.Mutex
		serveErrs    []error
		members      = make([]*Member, 0, g-1)
		memberShards = make([]int, 0, g-1)
		links        = make([]MemberLink, 0, g-1)
		meters       = make([]*transport.Meter, g)
	)
	for i := 0; i < g; i++ {
		if i == leaderIdx {
			continue
		}
		platform, err := enclave.NewPlatform()
		if err != nil {
			return nil, fmt.Errorf("federation: %w", err)
		}
		member, err := NewMember(fmt.Sprintf("gdo-%d", i), shards[i], platform, authority)
		if err != nil {
			return nil, err
		}
		if prep != nil {
			prep(i, member)
		}
		members = append(members, member)
		memberShards = append(memberShards, i)
		meters[i] = &transport.Meter{}

		// spawn creates one attestable channel to this member: a fresh pipe
		// whose far end is served by a new goroutine. The initial connection
		// and every redial go through it, so a reconnecting leader talks to
		// a live serving loop with fresh AEAD state.
		meter, shardIdx := meters[i], i
		spawn := func() transport.Conn {
			leaderEnd, memberEnd := transport.Pipe()
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := member.Serve(memberEnd); err != nil {
					mu.Lock()
					serveErrs = append(serveErrs, err)
					mu.Unlock()
				}
			}()
			conn := transport.NewMetered(leaderEnd, meter)
			if inject != nil {
				conn = inject(shardIdx, conn)
			}
			return conn
		}
		link := MemberLink{Conn: spawn(), Name: member.ID()}
		if !strict {
			link.Redial = func() (transport.Conn, error) { return spawn(), nil }
		}
		links = append(links, link)
	}

	report, runErr := leader.RunLinksContext(ctx, links, reference, cfg, policy, opts)
	for _, l := range links {
		_ = l.Conn.Close()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if strict && len(serveErrs) > 0 {
		return nil, errors.Join(serveErrs...)
	}
	return assembleResult(report, leaderIdx, g, members, memberShards, meters, shards), nil
}

// trafficStats folds the per-channel meters into the result summary.
func trafficStats(meters []*transport.Meter, shards []*genome.Matrix, leaderIdx int) TrafficStats {
	stats := TrafficStats{PerMemberBytes: make([]int64, len(meters))}
	for i, m := range meters {
		if m == nil {
			continue
		}
		stats.PerMemberBytes[i] = m.TotalBytes()
		stats.TotalBytes += m.TotalBytes()
		stats.TotalMessages += m.SentMessages() + m.RecvMessages()
	}
	for i, s := range shards {
		if i != leaderIdx {
			stats.GenomeShipBytes += vcf.EstimateBytes(s)
			stats.GenomePackedBytes += s.SizeBytes()
		}
	}
	return stats
}

// RunOverTCP runs the same federation across loopback TCP sockets: each
// member listens on an ephemeral port and serves one leader connection.
func RunOverTCP(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy) (*Result, error) {
	return runOverTCP(shards, reference, cfg, policy, RunOptions{}, true)
}

// RunOverTCPWithOptions is RunOverTCP under the fault-tolerance options.
// Each member keeps accepting connections until it serves a clean shutdown
// or its listener closes, so a leader redial after a connection drop reaches
// a live serving loop.
func RunOverTCPWithOptions(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions) (*Result, error) {
	return runOverTCP(shards, reference, cfg, policy, opts, false)
}

func runOverTCP(shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions, strict bool) (*Result, error) {
	g := len(shards)
	leader, authority, leaderIdx, err := electedLeader(shards)
	if err != nil {
		return nil, err
	}

	var (
		wg           sync.WaitGroup
		mu           sync.Mutex
		serveErrs    []error
		members      = make([]*Member, 0, g-1)
		memberShards = make([]int, 0, g-1)
		links        = make([]MemberLink, 0, g-1)
		listeners    = make([]*transport.Listener, 0, g-1)
		meters       = make([]*transport.Meter, g)
	)
	defer func() {
		for _, l := range listeners {
			_ = l.Close()
		}
	}()

	for i := 0; i < g; i++ {
		if i == leaderIdx {
			continue
		}
		platform, err := enclave.NewPlatform()
		if err != nil {
			return nil, fmt.Errorf("federation: %w", err)
		}
		member, err := NewMember(fmt.Sprintf("gdo-%d", i), shards[i], platform, authority)
		if err != nil {
			return nil, err
		}
		members = append(members, member)
		memberShards = append(memberShards, i)

		listener, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, listener)
		wg.Add(1)
		if strict {
			// Legacy behavior: one connection, one serving session.
			go func(m *Member, l *transport.Listener) {
				defer wg.Done()
				conn, err := l.Accept()
				if err != nil {
					mu.Lock()
					serveErrs = append(serveErrs, err)
					mu.Unlock()
					return
				}
				defer conn.Close()
				if err := m.Serve(conn); err != nil {
					mu.Lock()
					serveErrs = append(serveErrs, err)
					mu.Unlock()
				}
			}(member, listener)
		} else {
			// Resilient behavior: keep accepting so the leader can redial
			// after a drop; stop once a session ends in a clean shutdown or
			// the listener closes.
			go func(m *Member, l *transport.Listener) {
				defer wg.Done()
				for {
					conn, err := l.Accept()
					if err != nil {
						return
					}
					err = m.Serve(conn)
					_ = conn.Close()
					if err == nil {
						return
					}
					mu.Lock()
					serveErrs = append(serveErrs, err)
					mu.Unlock()
				}
			}(member, listener)
		}

		conn, err := transport.DialTimeout(listener.Addr(), opts.dialTimeout())
		if err != nil {
			return nil, err
		}
		meters[i] = &transport.Meter{}
		addr, meter := listener.Addr(), meters[i]
		link := MemberLink{Conn: transport.NewMetered(conn, meter), Name: member.ID()}
		if !strict {
			link.Redial = func() (transport.Conn, error) {
				c, err := transport.DialTimeout(addr, opts.dialTimeout())
				if err != nil {
					return nil, err
				}
				return transport.NewMetered(c, meter), nil
			}
		}
		links = append(links, link)
	}

	report, runErr := leader.RunLinks(links, reference, cfg, policy, opts)
	for _, l := range links {
		_ = l.Conn.Close()
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if strict && len(serveErrs) > 0 {
		return nil, errors.Join(serveErrs...)
	}
	return assembleResult(report, leaderIdx, g, members, memberShards, meters, shards), nil
}
