package federation

import (
	"bytes"
	"testing"

	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
)

// FuzzDecodeOffer: arbitrary bytes must never panic, and every accepted
// offer must survive an encode/decode round trip unchanged.
func FuzzDecodeOffer(f *testing.F) {
	var o attest.Offer
	copy(o.Quote.Measurement[:], bytes.Repeat([]byte{0xAB}, len(o.Quote.Measurement)))
	o.Quote.Signature = []byte("sig")
	o.ECDHPub = []byte("pubkey")
	f.Add(encodeOffer(o))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeOffer(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeOffer(got), data) {
			t.Fatalf("offer round trip diverged for %x", data)
		}
	})
}

// FuzzDecodeCounts: accepted payloads round-trip through encodeCounts.
func FuzzDecodeCounts(f *testing.F) {
	f.Add(encodeCounts([]int64{1, 2, 3}, 40))
	f.Add(encodeCounts(nil, 0))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		counts, n, err := decodeCounts(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeCounts(counts, n), data) {
			t.Fatalf("counts round trip diverged for %x", data)
		}
	})
}

// FuzzDecodePairRequest: accepted payloads round-trip.
func FuzzDecodePairRequest(f *testing.F) {
	f.Add(encodePairRequest(3, 7))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, err := decodePairRequest(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodePairRequest(a, b), data) {
			t.Fatalf("pair request round trip diverged for %x", data)
		}
	})
}

// FuzzDecodePairStats: accepted payloads round-trip.
func FuzzDecodePairStats(f *testing.F) {
	f.Add(encodePairStats(genome.PairStats{N: 5, SumX: 1, SumY: 2, SumXY: 3, SumXX: 4, SumYY: 5}))
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodePairStats(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodePairStats(s), data) {
			t.Fatalf("pair stats round trip diverged for %x", data)
		}
	})
}

// FuzzDecodePairBatchRequest: the length prefix is attacker-controlled; the
// decoder must reject oversized claims instead of allocating for them, and
// accepted payloads must round-trip.
func FuzzDecodePairBatchRequest(f *testing.F) {
	f.Add(encodePairBatchRequest([][2]int{{0, 1}, {2, 3}}))
	f.Add(encodePairBatchRequest(nil))
	// Claims 2^63 pairs with no bodies: must fail fast.
	f.Add([]byte{0x80, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		pairs, err := decodePairBatchRequest(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodePairBatchRequest(pairs), data) {
			t.Fatalf("pair batch request round trip diverged for %x", data)
		}
	})
}

// FuzzDecodePairBatchReply: same length-prefix hardening as the request.
func FuzzDecodePairBatchReply(f *testing.F) {
	f.Add(encodePairBatchReply([]genome.PairStats{{N: 1}, {N: 2, SumXY: -3}}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		stats, err := decodePairBatchReply(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodePairBatchReply(stats), data) {
			t.Fatalf("pair batch reply round trip diverged for %x", data)
		}
	})
}

// FuzzDecodeLRRequest: accepted payloads round-trip.
func FuzzDecodeLRRequest(f *testing.F) {
	f.Add(encodeLRRequest([]int{1, 2}, []float64{0.1, 0.2}, []float64{0.3, 0.4}))
	f.Add(encodeLRRequest(nil, nil, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		cols, cf, rf, err := decodeLRRequest(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeLRRequest(cols, cf, rf), data) {
			t.Fatalf("LR request round trip diverged for %x", data)
		}
	})
}

// FuzzDecodeResult: accepted payloads round-trip.
func FuzzDecodeResult(f *testing.F) {
	f.Add(encodeResult([]int{1}, []int{1, 2}, []int{2}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		afterMAF, afterLD, safe, err := decodeResult(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeResult(afterMAF, afterLD, safe), data) {
			t.Fatalf("result round trip diverged for %x", data)
		}
	})
}
