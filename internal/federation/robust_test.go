package federation

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
)

// tcpMember starts one member on an ephemeral TCP port with a resilient
// accept loop (serves until a clean shutdown or the listener closes) and
// returns its listener address plus a cleanup func that waits for the loop.
func tcpMember(t *testing.T, id string, shard *genome.Matrix, authority *attest.Authority) (string, func()) {
	t.Helper()
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	member, err := NewMember(id, shard, platform, authority)
	if err != nil {
		t.Fatalf("NewMember: %v", err)
	}
	listener, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := listener.Accept()
			if err != nil {
				return
			}
			err = member.Serve(conn)
			_ = conn.Close()
			if err == nil {
				return
			}
		}
	}()
	return listener.Addr(), func() {
		_ = listener.Close()
		wg.Wait()
	}
}

// tcpLeaderFixture builds a leader plus two TCP members and returns the
// pieces a test needs to drive RunLinks directly.
func tcpLeaderFixture(t *testing.T) (*Leader, *genome.Cohort, []*genome.Matrix, []MemberLink) {
	t.Helper()
	cohort := testCohort(t, 60, 120, 41)
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	authority, err := attest.NewAuthority()
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	leader, err := NewLeader("gdo-0", shards[0], platform, authority)
	if err != nil {
		t.Fatalf("NewLeader: %v", err)
	}
	links := make([]MemberLink, 0, 2)
	for i := 1; i < 3; i++ {
		addr, cleanup := tcpMember(t, fmt.Sprintf("gdo-%d", i), shards[i], authority)
		t.Cleanup(cleanup)
		conn, err := transport.Dial(addr)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		links = append(links, MemberLink{Conn: conn, Name: fmt.Sprintf("gdo-%d", i), Redial: func() (transport.Conn, error) {
			return transport.Dial(addr)
		}})
	}
	return leader, cohort, shards, links
}

// TestLeaderNamesMemberAndPhaseOnTCPDrop drops one member's connection in
// the middle of Phase 2 and Phase 3 over real TCP and asserts the leader's
// error names both the failing member and the protocol phase — the
// pre-quorum baseline the degradation machinery builds on.
func TestLeaderNamesMemberAndPhaseOnTCPDrop(t *testing.T) {
	cases := []struct {
		name      string
		kind      uint16
		wantPhase string
	}{
		{"phase2-pair-batch", KindPairBatchRequest, core.PhaseLD},
		{"phase3-lr-request", KindLRRequest, core.PhaseLR},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			leader, cohort, _, links := tcpLeaderFixture(t)
			// Drop member gdo-2's connection at the first message of the
			// targeted phase; no redial and no quorum, so the run must fail.
			links[1].Redial = nil
			links[1].Conn = transport.NewFault(links[1].Conn, transport.FaultPoint{
				Op:      transport.FaultSend,
				Kind:    transport.FaultClose,
				MsgKind: tc.kind,
			})
			_, err := leader.RunLinks(links, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{}, RunOptions{RPCTimeout: 2 * time.Second})
			if err == nil {
				t.Fatal("leader completed despite the dropped member")
			}
			if !strings.Contains(err.Error(), "gdo-2") {
				t.Errorf("error %q does not name member gdo-2", err)
			}
			if !strings.Contains(err.Error(), tc.wantPhase) {
				t.Errorf("error %q does not name phase %q", err, tc.wantPhase)
			}
			if !errors.Is(err, core.ErrMemberFailed) {
				t.Errorf("error %v is not marked as a member failure", err)
			}
		})
	}
}

// TestHungMemberCompletesWithinRPCTimeout is the acceptance check for the
// deadline plumbing: a member that attests and then goes silent used to
// deadlock the leader forever; with RPCTimeout set, the run must fail within
// the timeout budget instead.
func TestHungMemberCompletesWithinRPCTimeout(t *testing.T) {
	cohort := testCohort(t, 40, 60, 43)
	authority, err := attest.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	platformL, _ := enclave.NewPlatform()
	leader, err := NewLeader("leader", cohort.Case, platformL, authority)
	if err != nil {
		t.Fatal(err)
	}

	leaderEnd, memberEnd := transport.Pipe()
	defer leaderEnd.Close()
	// A member that completes attestation, then never answers anything.
	go func() {
		platformM, _ := enclave.NewPlatform()
		enc, err := platformM.Load(CodeIdentity, enclave.Config{})
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		conn, err := attestConn(memberEnd, authority, enc, false)
		if err != nil {
			t.Errorf("attest: %v", err)
			return
		}
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
			// Swallow every request without replying.
		}
	}()

	const rpcTimeout = 300 * time.Millisecond
	start := time.Now()
	_, err = leader.RunLinks(
		[]MemberLink{{Conn: leaderEnd, Name: "silent"}},
		cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{},
		RunOptions{RPCTimeout: rpcTimeout},
	)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("leader completed despite the silent member")
	}
	if !transport.IsTimeout(err) && !errors.Is(err, core.ErrMemberFailed) {
		t.Errorf("error %v is neither a timeout nor a member failure", err)
	}
	// Budget: one timed-out exchange plus protocol overhead; far below the
	// forever of the undeadlined path.
	if elapsed > 20*rpcTimeout {
		t.Errorf("leader took %v to give up, budget ~%v", elapsed, rpcTimeout)
	}
}

// TestTCPReconnectRecoversRun kills one member connection mid-protocol and
// asserts the leader redials, re-attests, and finishes with exactly the
// selection an undisturbed run produces.
func TestTCPReconnectRecoversRun(t *testing.T) {
	leader, cohort, shards, links := tcpLeaderFixture(t)
	want, err := core.RunDistributed(shards, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	fault := transport.NewFault(links[0].Conn, transport.FaultPoint{
		Op:      transport.FaultSend,
		Kind:    transport.FaultClose,
		MsgKind: KindPairBatchRequest,
	})
	links[0].Conn = fault

	report, err := leader.RunLinks(links, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{}, RunOptions{
		RPCTimeout: 2 * time.Second,
		MaxRetries: 2,
		Backoff:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunLinks did not recover: %v", err)
	}
	if !fault.Fired() {
		t.Fatal("fault never fired; the test exercised nothing")
	}
	if len(report.Excluded) != 0 {
		t.Fatalf("recovered run excluded members: %v", report.Excluded)
	}
	if !report.Selection.Equal(want.Selection) {
		t.Errorf("recovered selection %v != baseline %v", report.Selection, want.Selection)
	}
}

// TestMemberServeIdleTimeout bounds a member's wait for a silent leader.
func TestMemberServeIdleTimeout(t *testing.T) {
	cohort := testCohort(t, 30, 40, 47)
	authority, err := attest.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	platform, _ := enclave.NewPlatform()
	member, err := NewMember("m", cohort.Case, platform, authority)
	if err != nil {
		t.Fatal(err)
	}
	leaderPlatform, _ := enclave.NewPlatform()
	leaderEnc, err := leaderPlatform.Load(CodeIdentity, enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}

	leaderEnd, memberEnd := transport.Pipe()
	defer leaderEnd.Close()
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- member.ServeWithOptions(memberEnd, ServeOptions{IdleTimeout: 100 * time.Millisecond})
	}()
	if _, err := attestConn(leaderEnd, authority, leaderEnc, true); err != nil {
		t.Fatalf("attest: %v", err)
	}
	// The leader goes silent; the member must give up on its own.
	select {
	case err := <-serveDone:
		if !transport.IsTimeout(err) {
			t.Errorf("serve error = %v, want timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("member still serving after the idle timeout")
	}
}
