package federation

import (
	"sync"
	"time"

	"gendpr/internal/checkpoint"
	"gendpr/internal/crand"
	"gendpr/internal/transport"
)

// DefaultBackoff is the base delay before the first retry when RunOptions
// enables retries without choosing one.
const DefaultBackoff = 50 * time.Millisecond

// maxBackoff caps the exponential growth of the retry delay.
const maxBackoff = 5 * time.Second

// RunOptions configures the fault-tolerance envelope of a federation run.
// The zero value reproduces the base protocol exactly: no deadlines, no
// retries, and any member failure aborts the assessment.
type RunOptions struct {
	// RPCTimeout bounds each request/response exchange with a member,
	// including each attestation handshake step. Zero waits forever.
	RPCTimeout time.Duration
	// DialTimeout bounds re-establishing a dropped member connection. Zero
	// uses transport.DefaultDialTimeout.
	DialTimeout time.Duration
	// MaxRetries is how many times a failed member RPC is re-issued before
	// the member is declared failed. Member RPCs are idempotent — counts,
	// pair batches, and LR-matrices are pure functions of the shard — so
	// re-issuing is always safe. Every retry runs on a freshly redialed and
	// re-attested connection: the old channel's AEAD sequence numbers are
	// unrecoverable once a message is lost. Zero disables retries.
	MaxRetries int
	// Backoff is the base delay before the first retry; it doubles per
	// attempt (capped at 5s) with random jitter in [base/2, base]. Zero uses
	// DefaultBackoff.
	Backoff time.Duration
	// MinQuorum, when positive, enables quorum degradation: a member
	// declared failed is excluded and the assessment restarts over the
	// survivors as long as at least MinQuorum providers (counting the
	// leader's own shard) remain. Zero aborts on any member failure.
	MinQuorum int
	// Checkpoints, when non-nil, makes the leader persist a snapshot at
	// every phase boundary and seed its run from a compatible existing
	// snapshot. The store is leader-side state only — members never see it.
	// With a durable store (checkpoint.FileStore) a leader re-elected after
	// a crash resumes the assessment instead of recomputing it.
	Checkpoints checkpoint.Store
	// RetainCheckpoints keeps the final snapshot in Checkpoints after a
	// successful run instead of clearing it, so a later run with the same
	// fingerprint replays the completed phases. The assessment service sets
	// it to share checkpoints between identical requests; one-shot CLI runs
	// leave it false.
	RetainCheckpoints bool
	// Byzantine enables semantic fault containment on top of quorum
	// degradation: a member whose answers fail cross-member plausibility
	// checks, or that answers the same query differently across deliveries
	// (equivocation), is quarantined with an attributing blame record in
	// Report.Blamed instead of aborting the run. Requires MinQuorum > 0 to
	// have any effect beyond attribution.
	Byzantine bool
	// AllowRejoin permits a member excluded for a crash-class failure to
	// re-attest and rejoin at the next phase boundary (once per member per
	// run). Members blamed for equivocation or invalid payloads are barred.
	// Implies the Byzantine classification machinery.
	AllowRejoin bool
	// OnEvent, when set, observes member health transitions as they happen:
	// transport-level degradation ("retrying", "healthy", "failed") and
	// runner-level membership changes ("excluded", "byzantine", "rejoined").
	// The callback may fire from the leader's RPC path while internal locks
	// are held: it must be fast and must not call back into the federation.
	OnEvent func(MemberEvent)
}

// MemberEvent is one member health transition reported via RunOptions.OnEvent.
type MemberEvent struct {
	// Member is the member's link name.
	Member string
	// Event is the transition: "retrying", "healthy", "failed" at the
	// transport layer; "excluded", "byzantine", "rejoined" at the runner.
	Event string
	// Phase is the protocol phase implicated by a runner-level event; empty
	// for transport-level transitions.
	Phase string
}

func (o RunOptions) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return transport.DefaultDialTimeout
}

func (o RunOptions) backoffBase() time.Duration {
	if o.Backoff > 0 {
		return o.Backoff
	}
	return DefaultBackoff
}

// backoffDelay returns the jittered delay before the attempt-th retry
// (1-based): base doubled per attempt, capped, with the jitter drawn from
// the crypto-backed source so colluding members cannot predict the leader's
// retry schedule.
func backoffDelay(o RunOptions, attempt int) time.Duration {
	d := o.backoffBase()
	for i := 1; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return jitter(d)
}

var (
	jitterMu  sync.Mutex
	jitterSrc = crand.New()
)

// jitter maps d to a uniform value in [d/2, d]. The source is not
// concurrency-safe, so draws are serialized; retries are rare and the
// critical section is a few buffered byte reads.
func jitter(d time.Duration) time.Duration {
	if d < 2 {
		return d
	}
	half := d / 2
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return half + time.Duration(jitterSrc.Intn(int(half)+1))
}

// Health is the leader-side state of one member connection.
type Health uint8

const (
	// HealthHealthy means the last exchange with the member succeeded.
	HealthHealthy Health = iota
	// HealthRetrying means an exchange failed and the leader is inside the
	// redial/re-attest/backoff cycle.
	HealthRetrying
	// HealthFailed means the retry budget is exhausted; the member is
	// declared failed and every further request fails immediately.
	HealthFailed
	// HealthByzantine means the member was caught equivocating or serving
	// implausible payloads: it is quarantined — never retried, never sent
	// the result broadcast, and barred from rejoining.
	HealthByzantine
)

func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthRetrying:
		return "retrying"
	case HealthByzantine:
		return "byzantine"
	default:
		return "failed"
	}
}
