package federation

import (
	"testing"

	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
)

func TestOfferCodecRoundTrip(t *testing.T) {
	authority, err := attest.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := platform.Load(CodeIdentity, enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := attest.NewHandshake(authority, enc)
	if err != nil {
		t.Fatal(err)
	}
	offer := hs.Offer()
	got, err := decodeOffer(encodeOffer(offer))
	if err != nil {
		t.Fatalf("decodeOffer: %v", err)
	}
	if got.Quote.Measurement != offer.Quote.Measurement ||
		got.Quote.ReportData != offer.Quote.ReportData ||
		got.Nonce != offer.Nonce {
		t.Fatal("offer round trip lost fields")
	}
	if string(got.Quote.Signature) != string(offer.Quote.Signature) ||
		string(got.ECDHPub) != string(offer.ECDHPub) {
		t.Fatal("offer round trip lost byte fields")
	}
	// The decoded offer must still verify.
	if err := attest.VerifyQuote(authority.PublicKey(), got.Quote, enc.Measurement()); err != nil {
		t.Fatalf("decoded quote failed verification: %v", err)
	}
}

func TestDecodeOfferMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"garbage":   {1, 2, 3, 4},
		"truncated": encodeOffer(attest.Offer{})[:10],
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := decodeOffer(b); err == nil {
				t.Fatal("malformed offer accepted")
			}
		})
	}
}

func TestCountsCodec(t *testing.T) {
	counts, n, err := decodeCounts(encodeCounts([]int64{1, -2, 3}, 42))
	if err != nil {
		t.Fatal(err)
	}
	if n != 42 || len(counts) != 3 || counts[1] != -2 {
		t.Fatalf("got %v, %d", counts, n)
	}
	if _, _, err := decodeCounts([]byte{1, 2}); err == nil {
		t.Error("short counts accepted")
	}
	if _, _, err := decodeCounts(append(encodeCounts(nil, 1), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestPairCodecs(t *testing.T) {
	a, b, err := decodePairRequest(encodePairRequest(7, 9))
	if err != nil || a != 7 || b != 9 {
		t.Fatalf("pair request round trip: %d,%d,%v", a, b, err)
	}
	if _, _, err := decodePairRequest([]byte{1}); err == nil {
		t.Error("short pair request accepted")
	}

	s := genome.PairStats{N: 1, SumX: 2, SumY: 3, SumXY: 4, SumXX: 5, SumYY: 6}
	got, err := decodePairStats(encodePairStats(s))
	if err != nil || got != s {
		t.Fatalf("pair stats round trip: %+v, %v", got, err)
	}
	if _, err := decodePairStats([]byte{1, 2, 3}); err == nil {
		t.Error("short pair stats accepted")
	}
}

func TestPairBatchCodecs(t *testing.T) {
	pairs := [][2]int{{1, 2}, {3, 4}, {5, 6}}
	got, err := decodePairBatchRequest(encodePairBatchRequest(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != [2]int{5, 6} {
		t.Fatalf("batch request round trip: %v", got)
	}
	stats := []genome.PairStats{{N: 1}, {N: 2, SumXY: 7}}
	gotStats, err := decodePairBatchReply(encodePairBatchReply(stats))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotStats) != 2 || gotStats[1].SumXY != 7 {
		t.Fatalf("batch reply round trip: %v", gotStats)
	}
	// Hostile batch sizes are rejected before allocation.
	huge := make([]byte, 8)
	huge[0] = 0xFF
	if _, err := decodePairBatchRequest(huge); err == nil {
		t.Error("hostile batch request size accepted")
	}
	if _, err := decodePairBatchReply(huge); err == nil {
		t.Error("hostile batch reply size accepted")
	}
}

func TestLRRequestCodec(t *testing.T) {
	cols, caseFreq, refFreq, err := decodeLRRequest(encodeLRRequest([]int{3, 1}, []float64{0.5, 0.25}, []float64{0.75, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != 3 || caseFreq[1] != 0.25 || refFreq[0] != 0.75 {
		t.Fatalf("LR request round trip: %v %v %v", cols, caseFreq, refFreq)
	}
	if _, _, _, err := decodeLRRequest([]byte{9}); err == nil {
		t.Error("short LR request accepted")
	}
}

func TestResultCodec(t *testing.T) {
	maf, ld, safe, err := decodeResult(encodeResult([]int{1, 2}, []int{2}, []int{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(maf) != 2 || len(ld) != 1 || len(safe) != 0 {
		t.Fatalf("result round trip: %v %v %v", maf, ld, safe)
	}
	if _, _, _, err := decodeResult([]byte{1, 2, 3}); err == nil {
		t.Error("short result accepted")
	}
}
