package federation

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"gendpr/internal/checkpoint"
	"gendpr/internal/core"
	"gendpr/internal/transport"
)

// The chaos soak composes every fault class this package can inject —
// transport faults, Byzantine perturbations, leader kills, checkpoint
// corruption — from one PRNG seed, so a failure reproduces exactly by
// re-running with the printed seed. Every iteration must end in one of the
// two acceptable outcomes: a selection bit-identical to the fault-free
// baseline, or a correct degradation with an accurate excluded/blamed set
// and the survivors' baseline selection. Anything else — a hang, a silent
// wrong answer, a quarantined member sneaking back into the quorum — fails
// the soak.
//
// Knobs (environment):
//
//	GENDPR_SOAK_SEED  PRNG seed (default 20260807)
//	GENDPR_SOAK_N     iterations (default 25; 6 under -short)

const defaultSoakSeed = 20260807

func soakParams() (seed int64, iters int) {
	seed = defaultSoakSeed
	if s := os.Getenv("GENDPR_SOAK_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	iters = 25
	if testing.Short() {
		iters = 6
	}
	if s := os.Getenv("GENDPR_SOAK_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			iters = v
		}
	}
	return seed, iters
}

// guardSoak runs one federation under the watchdog, turning a hang into an
// error instead of a stuck suite.
func guardSoak(run func() (*Result, error)) (*Result, error) {
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := run()
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(chaosWatchdog):
		return nil, fmt.Errorf("run hung past the %v watchdog", chaosWatchdog)
	}
}

// soakTally is the soak's blame summary, logged (and archived by check.sh)
// at the end of a run.
type soakTally struct {
	blamed      int // blame records collected across iterations
	quarantined int // members excluded for byzantine behavior
	rejoined    int // members that crashed, re-attested, and rejoined
}

func TestChaosSoak(t *testing.T) {
	seed, iters := soakParams()
	rng := rand.New(rand.NewSource(seed))
	f := newChaosFixture(t)
	tally := &soakTally{}
	classNames := []string{"transport", "byzantine", "storage", "rejoin"}
	classCounts := make([]int, len(classNames))
	for i := 0; i < iters; i++ {
		class := rng.Intn(len(classNames))
		classCounts[class]++
		var err error
		switch class {
		case 0:
			err = soakTransport(t, f, rng)
		case 1:
			err = soakByzantine(t, f, rng, tally)
		case 2:
			err = soakStorage(t, f, rng)
		case 3:
			err = soakRejoin(t, f, rng, tally)
		}
		if err != nil {
			t.Fatalf("soak seed %d iteration %d class %s: %v", seed, i, classNames[class], err)
		}
	}
	summary := ""
	for c, n := range classCounts {
		summary += fmt.Sprintf(" %s=%d", classNames[c], n)
		if iters >= 20 && n == 0 {
			t.Errorf("soak seed %d never drew fault class %s in %d iterations", seed, classNames[c], iters)
		}
	}
	t.Logf("soak seed %d: %d iterations%s", seed, iters, summary)
	t.Logf("soak seed %d blame summary: %d blame records, %d members quarantined, %d members rejoined",
		seed, tally.blamed, tally.quarantined, tally.rejoined)
}

// soakMsgKinds are the protocol steps the random fault points target, per
// direction.
var (
	soakSendKinds = []uint16{KindCountsRequest, KindPairBatchRequest, KindLRRequest}
	soakRecvKinds = []uint16{KindCountsReply, KindPairBatchReply, KindLRReply}
)

func randomPoint(rng *rand.Rand, kinds []transport.FaultKind) transport.FaultPoint {
	p := transport.FaultPoint{Kind: kinds[rng.Intn(len(kinds))]}
	if rng.Intn(2) == 0 {
		p.Op = transport.FaultSend
		p.MsgKind = soakSendKinds[rng.Intn(len(soakSendKinds))]
	} else {
		p.Op = transport.FaultRecv
		p.MsgKind = soakRecvKinds[rng.Intn(len(soakRecvKinds))]
	}
	return p
}

// soakTransport injects one random recoverable transport fault with retries
// enabled: the run must rescue itself — full baseline, nobody excluded.
func soakTransport(t *testing.T, f *chaosFixture, rng *rand.Rand) error {
	point := randomPoint(rng, []transport.FaultKind{transport.FaultError, transport.FaultClose, transport.FaultDrop})
	inj := &chaosInjector{point: point}
	policy := core.CollusionPolicy{}
	res, err := guardSoak(func() (*Result, error) {
		return runInProcessInjected(f.shards, f.cohort.Reference, core.DefaultConfig(), policy, RunOptions{
			RPCTimeout: chaosRPCTimeout,
			MaxRetries: 3,
			Backoff:    5 * time.Millisecond,
		}, false, inj.inject)
	})
	if err != nil {
		return fmt.Errorf("%s: run did not recover: %w", point, err)
	}
	if !inj.fired() {
		return fmt.Errorf("%s: fault never fired", point)
	}
	if len(res.Excluded) != 0 {
		return fmt.Errorf("%s: recovered run excluded %v", point, res.Excluded)
	}
	want := f.baseline(t, -1, policy)
	if !res.Report.Selection.Equal(want.Selection) {
		return fmt.Errorf("%s: selection %v != baseline %v", point, res.Report.Selection, want.Selection)
	}
	return nil
}

// soakByzantine makes one member lie in a random way — a semantic
// perturbation in one of the three phases, or in-flight ciphertext tampering
// — and demands containment: exactly that member excluded, a blame record
// when the lie is attributable, and the survivor-baseline selection.
func soakByzantine(t *testing.T, f *chaosFixture, rng *rand.Rand, tally *soakTally) error {
	mode := rng.Intn(4)
	policy := core.CollusionPolicy{}
	var (
		inj   *chaosInjector
		prep  *byzantinePrep
		label string
		phase string
	)
	switch mode {
	case 0:
		prep = &byzantinePrep{mode: core.ByzantineCountsOverflow, n: 1}
		label, phase = "counts-overflow", core.PhaseSummary
	case 1:
		prep = &byzantinePrep{mode: core.ByzantinePairSkew, n: 1}
		label, phase = "pair-skew", core.PhaseLD
	case 2:
		prep = &byzantinePrep{mode: core.ByzantinePatternFlip, n: 1}
		label, phase = "pattern-flip", core.PhaseLR
		policy = core.CollusionPolicy{F: 1}
	case 3:
		inj = &chaosInjector{point: transport.FaultPoint{
			Op:      transport.FaultRecv,
			Kind:    transport.FaultCorrupt,
			MsgKind: soakRecvKinds[rng.Intn(len(soakRecvKinds))],
		}}
		label = "wire-tamper"
	}
	var inject faultInjector
	if inj != nil {
		inject = inj.inject
	}
	var prepFn memberPrep
	if prep != nil {
		prepFn = prep.prep
	}
	res, err := guardSoak(func() (*Result, error) {
		return runInProcessPrepared(f.shards, f.cohort.Reference, core.DefaultConfig(), policy, RunOptions{
			RPCTimeout: chaosRPCTimeout,
			MaxRetries: 2,
			Backoff:    5 * time.Millisecond,
			MinQuorum:  2,
			Byzantine:  true,
		}, false, inject, prepFn)
	})
	if err != nil {
		return fmt.Errorf("%s: run did not contain the fault: %w", label, err)
	}
	var bad int
	if prep != nil {
		bad = prep.shard()
	} else {
		if !inj.fired() {
			return fmt.Errorf("%s: fault never fired", label)
		}
		bad = inj.target
	}
	if len(res.Excluded) != 1 || res.Excluded[0] != bad {
		return fmt.Errorf("%s: excluded %v, want exactly shard %d", label, res.Excluded, bad)
	}
	if len(res.Rejoined) != 0 {
		return fmt.Errorf("%s: quarantined member rejoined: %v", label, res.Rejoined)
	}
	tally.quarantined++
	tally.blamed += len(res.Report.Blamed)
	if phase != "" {
		badName := fmt.Sprintf("gdo-%d", bad)
		found := false
		for _, b := range res.Report.Blamed {
			if b.Member == badName && b.Kind == core.BlameInvalidPayload && b.Phase == phase {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("%s: blames %+v lack {%s, invalid-payload, %s}", label, res.Report.Blamed, badName, phase)
		}
	}
	want := f.baseline(t, bad, policy)
	if !res.Report.Selection.Equal(want.Selection) {
		return fmt.Errorf("%s: selection %v != survivor baseline %v", label, res.Report.Selection, want.Selection)
	}
	return nil
}

// soakStorage kills the first elected leader right after a random checkpoint
// boundary, then corrupts the current on-disk snapshot before the successor
// loads it: the store must quarantine the corrupt generation, fall back to
// the previous boundary, and the resumed run must still produce the
// fault-free baseline while reporting the recovery.
func soakStorage(t *testing.T, f *chaosFixture, rng *rand.Rand) error {
	killAt := 2 + rng.Intn(2) // after Phase 2 or after the (single) Phase 3 combination
	dir := t.TempDir()
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return fmt.Errorf("NewFileStore: %w", err)
	}
	garbage := make([]byte, 64)
	rng.Read(garbage)
	var mu sync.Mutex
	attempts := 0
	hook := func(attempt, leaderIdx int, cancel context.CancelFunc, st checkpoint.Store) checkpoint.Store {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if attempt == 0 {
			return &killStore{inner: st, cancel: cancel, killAt: killAt}
		}
		// The torn write lands between the crash and the successor's load.
		if err := os.WriteFile(filepath.Join(dir, "assessment.ckpt"), garbage, 0o600); err != nil {
			t.Errorf("corrupting snapshot: %v", err)
		}
		return st
	}
	policy := core.CollusionPolicy{}
	res, err := guardSoak(func() (*Result, error) {
		return runInProcessFailover(context.Background(), f.shards, f.cohort.Reference, core.DefaultConfig(), policy, RunOptions{
			RPCTimeout:  chaosRPCTimeout,
			MaxRetries:  1,
			Backoff:     5 * time.Millisecond,
			Checkpoints: store,
		}, hook)
	})
	if err != nil {
		return fmt.Errorf("killAt=%d: failover run failed: %w", killAt, err)
	}
	mu.Lock()
	got := attempts
	mu.Unlock()
	if got != 2 {
		return fmt.Errorf("killAt=%d: ran %d attempts, want 2", killAt, got)
	}
	if len(res.FormerLeaders) != 1 {
		return fmt.Errorf("killAt=%d: FormerLeaders %v, want one dead leader", killAt, res.FormerLeaders)
	}
	if !res.Report.Resumed {
		return fmt.Errorf("killAt=%d: successor did not resume from a checkpoint", killAt)
	}
	if !res.Report.CorruptionRecovered {
		return fmt.Errorf("killAt=%d: resume did not report the corruption recovery", killAt)
	}
	if len(res.Excluded) != 0 {
		return fmt.Errorf("killAt=%d: excluded %v", killAt, res.Excluded)
	}
	want := f.baseline(t, -1, policy)
	if !res.Report.Selection.Equal(want.Selection) {
		return fmt.Errorf("killAt=%d: selection %v != baseline %v", killAt, res.Report.Selection, want.Selection)
	}
	return nil
}

// soakRejoin crashes one member with retries disabled, lets it rejoin at the
// next phase boundary, and demands the undisturbed baseline with the member
// back in the quorum.
func soakRejoin(t *testing.T, f *chaosFixture, rng *rand.Rand, tally *soakTally) error {
	point := randomPoint(rng, []transport.FaultKind{transport.FaultError, transport.FaultClose, transport.FaultDrop})
	inj := &chaosInjector{point: point}
	policy := core.CollusionPolicy{}
	res, err := guardSoak(func() (*Result, error) {
		return runInProcessInjected(f.shards, f.cohort.Reference, core.DefaultConfig(), policy, RunOptions{
			RPCTimeout:  chaosRPCTimeout,
			MaxRetries:  0,
			MinQuorum:   2,
			Byzantine:   true,
			AllowRejoin: true,
		}, false, inj.inject)
	})
	if err != nil {
		return fmt.Errorf("%s: run did not recover through rejoin: %w", point, err)
	}
	if !inj.fired() {
		return fmt.Errorf("%s: fault never fired", point)
	}
	if len(res.Excluded) != 0 {
		return fmt.Errorf("%s: rejoined member still excluded: %v", point, res.Excluded)
	}
	if len(res.Rejoined) != 1 || res.Rejoined[0] != inj.target {
		return fmt.Errorf("%s: rejoined %v, want exactly the crashed shard %d", point, res.Rejoined, inj.target)
	}
	tally.rejoined++
	want := f.baseline(t, -1, policy)
	if !res.Report.Selection.Equal(want.Selection) {
		return fmt.Errorf("%s: selection %v != full baseline %v", point, res.Report.Selection, want.Selection)
	}
	return nil
}
