package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
)

// Member is one non-leader genome data owner: its private shard stays on its
// premises, and its trusted module answers the leader's requests with
// encrypted intermediate results.
type Member struct {
	id        string
	shard     *genome.Matrix
	enclave   *enclave.Enclave
	authority *attest.Authority

	mu     sync.Mutex
	result *core.Selection
	// prov is the shard provider shared by every serving session: redials
	// reach the same provider state, so a wrapper's behavior (fault
	// injection counters, caches) survives reconnection like a real member
	// process would.
	prov core.Provider
	wrap func(core.Provider) core.Provider
}

// NewMember creates a member node. The enclave is loaded on the member's
// platform from the federation code identity; the authority stands in for
// the attestation infrastructure both sides trust.
func NewMember(id string, shard *genome.Matrix, platform *enclave.Platform, authority *attest.Authority) (*Member, error) {
	if shard == nil {
		return nil, fmt.Errorf("federation: member %s needs a genotype shard", id)
	}
	enc, err := platform.Load(CodeIdentity, enclave.Config{})
	if err != nil {
		return nil, fmt.Errorf("federation: member %s: %w", id, err)
	}
	return &Member{id: id, shard: shard, enclave: enc, authority: authority}, nil
}

// ID returns the member identifier.
func (m *Member) ID() string { return m.id }

// WrapProvider installs a hook that wraps the member's shard provider the
// first time a serving session needs it. The chaos harness uses it to splice
// a core.ByzantineProvider under the wire layer; production members never
// call it. It must be set before serving begins and resets any provider
// already built.
func (m *Member) WrapProvider(wrap func(core.Provider) core.Provider) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wrap = wrap
	m.prov = nil
}

// provider returns the shared shard provider, building it on first use.
func (m *Member) provider() core.Provider {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.prov == nil {
		var p core.Provider = core.NewLocalMember(m.shard)
		if m.wrap != nil {
			p = m.wrap(p)
		}
		m.prov = p
	}
	return m.prov
}

// LastResult returns the final selection broadcast by the leader, if the
// protocol completed.
func (m *Member) LastResult() *core.Selection {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.result
}

// ServeOptions configures a member's serving loop.
type ServeOptions struct {
	// IdleTimeout bounds the wait for the next leader message (and each
	// attestation handshake step); when it expires the member stops serving
	// with a timeout error, freeing the slot for a reconnecting leader.
	// Zero waits forever.
	IdleTimeout time.Duration
}

// Serve attests the connection to the leader and answers requests until the
// leader sends a shutdown or the connection closes. It returns nil on a
// clean shutdown.
func (m *Member) Serve(raw transport.Conn) error {
	return m.ServeWithOptions(raw, ServeOptions{})
}

// ServeWithOptions is Serve with an idle deadline. Malformed requests —
// decode failures, protocol violations, out-of-range queries — are answered
// with KindError and the loop keeps serving: a single bad request must not
// tear down an attested session the leader may still need. Teardown is
// reserved for transport failures, where the channel itself is gone.
func (m *Member) ServeWithOptions(raw transport.Conn, opts ServeOptions) error {
	return m.ServeContext(nil, raw, opts)
}

// ServeContext is ServeWithOptions under a context: cancellation interrupts
// an in-flight attestation step, receive, or reply, and the loop returns
// ctx.Err(). A nil or never-canceled context reproduces ServeWithOptions
// exactly. This is how a member node shuts down cleanly on a signal while
// parked waiting for the next leader request.
func (m *Member) ServeContext(ctx context.Context, raw transport.Conn, opts ServeOptions) error {
	conn, err := attestConnContext(ctx, raw, m.authority, m.enclave, false, opts.IdleTimeout)
	if err != nil {
		return fmt.Errorf("federation: member %s: %w", m.id, err)
	}
	local := m.provider()
	for {
		msg, err := transport.RecvContext(ctx, conn, opts.IdleTimeout)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("federation: member %s: %w", m.id, err)
			}
			if errors.Is(err, transport.ErrClosed) {
				return fmt.Errorf("federation: member %s: leader disconnected", m.id)
			}
			return fmt.Errorf("federation: member %s recv: %w", m.id, err)
		}
		reply, done, err := m.handle(local, msg)
		if err != nil {
			sendErr := transport.SendContext(ctx, conn, transport.Message{Kind: KindError, Payload: []byte(err.Error())}, 0)
			if sendErr != nil {
				return fmt.Errorf("federation: member %s reporting %q: %w", m.id, err, sendErr)
			}
			continue
		}
		if reply != nil {
			if err := transport.SendContext(ctx, conn, *reply, 0); err != nil {
				return fmt.Errorf("federation: member %s send: %w", m.id, err)
			}
		}
		if done {
			return nil
		}
	}
}

// handle dispatches one leader request. It returns the reply (nil when the
// message needs none) and whether the serving loop should end.
func (m *Member) handle(local core.Provider, msg transport.Message) (*transport.Message, bool, error) {
	switch msg.Kind {
	case KindCountsRequest:
		counts, err := local.Counts()
		if err != nil {
			return nil, false, err
		}
		n, err := local.CaseN()
		if err != nil {
			return nil, false, err
		}
		return &transport.Message{Kind: KindCountsReply, Payload: encodeCounts(counts, n)}, false, nil

	case KindPairRequest:
		a, b, err := decodePairRequest(msg.Payload)
		if err != nil {
			return nil, false, err
		}
		s, err := local.PairStats(a, b)
		if err != nil {
			return nil, false, err
		}
		return &transport.Message{Kind: KindPairReply, Payload: encodePairStats(s)}, false, nil

	case KindPairBatchRequest:
		pairs, err := decodePairBatchRequest(msg.Payload)
		if err != nil {
			return nil, false, err
		}
		stats, err := pairStatsBatch(local, pairs)
		if err != nil {
			return nil, false, err
		}
		return &transport.Message{Kind: KindPairBatchReply, Payload: encodePairBatchReply(stats)}, false, nil

	case KindLRRequest:
		cols, caseFreq, refFreq, err := decodeLRRequest(msg.Payload)
		if err != nil {
			return nil, false, err
		}
		if len(caseFreq) == 0 && len(refFreq) == 0 && len(cols) > 0 {
			// A frequency-free request over a non-empty column list asks for
			// the genotype bit-pattern: the combination-lattice leader skins
			// it locally per collusion combination instead of requesting one
			// full LR-matrix per combination.
			pp, ok := local.(core.PatternProvider)
			if !ok {
				return nil, false, fmt.Errorf("member %s cannot serve genotype patterns", m.id)
			}
			p, err := pp.LRPattern(cols)
			if err != nil {
				return nil, false, err
			}
			return &transport.Message{Kind: KindLRReply, Payload: p.EncodePatternWire()}, false, nil
		}
		lr, err := local.LRMatrix(cols, caseFreq, refFreq)
		if err != nil {
			return nil, false, err
		}
		return &transport.Message{Kind: KindLRReply, Payload: lr.EncodeWire()}, false, nil

	case KindResult:
		afterMAF, afterLD, safe, err := decodeResult(msg.Payload)
		if err != nil {
			return nil, false, err
		}
		m.mu.Lock()
		m.result = &core.Selection{AfterMAF: afterMAF, AfterLD: afterLD, Safe: safe}
		m.mu.Unlock()
		return nil, false, nil

	case KindShutdown:
		return nil, true, nil

	default:
		return nil, false, fmt.Errorf("%w: unexpected message kind %d", ErrProtocol, msg.Kind)
	}
}

// pairStatsBatch answers a batch request through the provider's batch fast
// path when it has one, or pair by pair otherwise.
func pairStatsBatch(p core.Provider, pairs [][2]int) ([]genome.PairStats, error) {
	if bp, ok := p.(core.BatchPairProvider); ok {
		return bp.PairStatsBatch(pairs)
	}
	out := make([]genome.PairStats, len(pairs))
	for i, pr := range pairs {
		s, err := p.PairStats(pr[0], pr[1])
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
