package federation

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
)

func testCohort(t testing.TB, snps, caseN int, seed int64) *genome.Cohort {
	t.Helper()
	cohort, err := genome.Generate(genome.DefaultGeneratorConfig(snps, caseN, seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return cohort
}

func TestElectLeaderDeterministicAndInRange(t *testing.T) {
	nonces := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	idx, err := ElectLeader(nonces, 3)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= 3 {
		t.Fatalf("leader index %d out of range", idx)
	}
	again, err := ElectLeader(nonces, 3)
	if err != nil {
		t.Fatal(err)
	}
	if idx != again {
		t.Fatal("election must be deterministic in the nonces")
	}
	if _, err := ElectLeader(nonces, 2); err == nil {
		t.Error("nonce/member count mismatch must fail")
	}
	if _, err := ElectLeader([][]byte{nil, []byte("x")}, 2); err == nil {
		t.Error("empty nonce must fail")
	}
	if _, err := ElectLeader(nil, 0); err == nil {
		t.Error("empty federation must fail")
	}
}

func TestElectLeaderCoversAllIndices(t *testing.T) {
	// Different nonce sets must be able to elect different leaders.
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		nonces := [][]byte{{byte(i)}, {byte(i * 7)}, {byte(i * 13)}}
		idx, err := ElectLeader(nonces, 3)
		if err != nil {
			t.Fatal(err)
		}
		seen[idx] = true
	}
	if len(seen) < 2 {
		t.Errorf("election highly skewed: only indices %v elected", seen)
	}
}

func TestInProcessFederationMatchesCentralized(t *testing.T) {
	cohort := testCohort(t, 120, 300, 51)
	cfg := core.DefaultConfig()
	central, err := core.RunCentralized(cohort, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := cohort.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunInProcess(shards, cohort.Reference, cfg, core.CollusionPolicy{})
	if err != nil {
		t.Fatalf("RunInProcess: %v", err)
	}
	if !res.Report.Selection.Equal(central.Selection) {
		t.Errorf("federation %v != centralized %v", res.Report.Selection, central.Selection)
	}
	if res.LeaderIndex < 0 || res.LeaderIndex >= 4 {
		t.Errorf("leader index %d out of range", res.LeaderIndex)
	}
	// Every non-leader member must have received the broadcast selection.
	for i, sel := range res.MemberSelections {
		if i == res.LeaderIndex {
			if sel != nil {
				t.Errorf("leader slot %d has a member selection", i)
			}
			continue
		}
		if sel == nil {
			t.Errorf("member %d never received the result broadcast", i)
			continue
		}
		if !sel.Equal(res.Report.Selection) {
			t.Errorf("member %d received %v, want %v", i, *sel, res.Report.Selection)
		}
	}
}

func TestInProcessFederationWithCollusionPolicy(t *testing.T) {
	cohort := testCohort(t, 90, 240, 53)
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunInProcess(shards, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{F: 1})
	if err != nil {
		t.Fatalf("RunInProcess: %v", err)
	}
	if res.Report.Combinations != 1+3 {
		t.Errorf("combinations=%d, want 4", res.Report.Combinations)
	}
	base, err := core.RunDistributed(shards, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{F: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The networked run must agree with the in-memory protocol — only the
	// transport differs. Shard-to-provider order differs with the elected
	// leader, but the per-phase intersections make the result order
	// independent.
	if !res.Report.Selection.Equal(base.Selection) {
		t.Errorf("networked %v != in-memory %v", res.Report.Selection, base.Selection)
	}
}

func TestFederationParallelCombinations(t *testing.T) {
	// Parallel combination evaluation issues concurrent requests on the
	// shared member connections; the remote provider must serialize them
	// and the selection must match sequential mode.
	cohort := testCohort(t, 90, 240, 63)
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	seqCfg := core.DefaultConfig()
	parCfg := core.DefaultConfig()
	parCfg.ParallelCombinations = true
	policy := core.CollusionPolicy{Conservative: true}

	seq, err := RunInProcess(shards, cohort.Reference, seqCfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunInProcess(shards, cohort.Reference, parCfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Report.Selection.Equal(par.Report.Selection) {
		t.Errorf("parallel %v != sequential %v", par.Report.Selection, seq.Report.Selection)
	}
}

func TestTCPFederationMatchesInProcess(t *testing.T) {
	cohort := testCohort(t, 80, 200, 57)
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	overTCP, err := RunOverTCP(shards, cohort.Reference, cfg, core.CollusionPolicy{})
	if err != nil {
		t.Fatalf("RunOverTCP: %v", err)
	}
	inProc, err := RunInProcess(shards, cohort.Reference, cfg, core.CollusionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !overTCP.Report.Selection.Equal(inProc.Report.Selection) {
		t.Errorf("TCP %v != in-process %v", overTCP.Report.Selection, inProc.Report.Selection)
	}
}

func TestFederationTrafficAccounting(t *testing.T) {
	cohort := testCohort(t, 100, 260, 59)
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunInProcess(shards, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Traffic
	if tr.TotalBytes <= 0 || tr.TotalMessages <= 0 {
		t.Fatalf("traffic not recorded: %+v", tr)
	}
	if tr.PerMemberBytes[res.LeaderIndex] != 0 {
		t.Error("leader slot must carry no channel traffic")
	}
	var sum int64
	active := 0
	for i, b := range tr.PerMemberBytes {
		sum += b
		if i != res.LeaderIndex {
			if b <= 0 {
				t.Errorf("member %d exchanged no bytes", i)
			}
			active++
		}
	}
	if sum != tr.TotalBytes {
		t.Errorf("per-member sum %d != total %d", sum, tr.TotalBytes)
	}
	if active != 2 {
		t.Errorf("%d active members, want 2", active)
	}
	if tr.GenomeShipBytes <= tr.GenomePackedBytes {
		t.Error("VCF baseline must exceed the bit-packed lower bound")
	}
	// The protocol must beat shipping the VCF files (the paper's claim).
	if tr.SavingsFactor() <= 1 {
		t.Errorf("savings factor %.2f, want > 1 (protocol %d B vs genomes %d B)",
			tr.SavingsFactor(), tr.TotalBytes, tr.GenomeShipBytes)
	}
	if (TrafficStats{}).SavingsFactor() != 0 {
		t.Error("empty stats must report factor 0")
	}
}

func TestAttestationRejectsForeignAuthority(t *testing.T) {
	cohort := testCohort(t, 30, 40, 3)
	authorityA, err := attest.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	authorityB, err := attest.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	platformL, _ := enclave.NewPlatform()
	platformM, _ := enclave.NewPlatform()
	leader, err := NewLeader("leader", cohort.Case, platformL, authorityA)
	if err != nil {
		t.Fatal(err)
	}
	member, err := NewMember("member", cohort.Case, platformM, authorityB)
	if err != nil {
		t.Fatal(err)
	}

	leaderEnd, memberEnd := transport.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := member.Serve(memberEnd); err == nil {
			t.Error("member accepted a quote from a foreign authority")
		}
	}()
	_, err = leader.Run([]transport.Conn{leaderEnd}, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{})
	if err == nil {
		t.Fatal("leader accepted a quote from a foreign authority")
	}
	leaderEnd.Close()
	wg.Wait()
}

func TestAttestationRejectsWrongCode(t *testing.T) {
	// A party whose enclave runs different code fails the measurement pin
	// even with a genuine quote from the shared authority.
	authority, err := attest.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	platformGood, _ := enclave.NewPlatform()
	platformEvil, _ := enclave.NewPlatform()
	good, err := platformGood.Load(CodeIdentity, enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}
	evil, err := platformEvil.Load([]byte("modified-binary"), enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}

	goodEnd, evilEnd := transport.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := attestConn(evilEnd, authority, evil, false)
		done <- err
	}()
	if _, err := attestConn(goodEnd, authority, good, true); !errors.Is(err, attest.ErrMeasurementMismatch) {
		t.Fatalf("good side: %v, want measurement mismatch", err)
	}
	goodEnd.Close()
	<-done
}

func TestMemberRejectsMalformedRequests(t *testing.T) {
	cohort := testCohort(t, 30, 40, 3)
	authority, err := attest.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	platform, _ := enclave.NewPlatform()
	member, err := NewMember("m", cohort.Case, platform, authority)
	if err != nil {
		t.Fatal(err)
	}
	leaderPlatform, _ := enclave.NewPlatform()
	leaderEnc, err := leaderPlatform.Load(CodeIdentity, enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}

	leaderEnd, memberEnd := transport.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- member.Serve(memberEnd) }()

	conn, err := attestConn(leaderEnd, authority, leaderEnc, true)
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	// Send a pair request asking for an out-of-range SNP.
	if err := conn.Send(transport.Message{Kind: KindPairRequest, Payload: encodePairRequest(0, 999)}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != KindError {
		t.Fatalf("reply kind %d, want KindError", reply.Kind)
	}
	if !strings.Contains(string(reply.Payload), "out of range") {
		t.Errorf("unexpected error payload: %s", reply.Payload)
	}

	// The attested session survives the malformed request: a valid query
	// must still be answered, and only shutdown ends the loop cleanly.
	if err := conn.Send(transport.Message{Kind: KindCountsRequest}); err != nil {
		t.Fatal(err)
	}
	reply, err = conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != KindCountsReply {
		t.Fatalf("post-error reply kind %d, want KindCountsReply", reply.Kind)
	}
	if err := conn.Send(transport.Message{Kind: KindShutdown}); err != nil {
		t.Fatal(err)
	}
	if serveErr := <-serveDone; serveErr != nil {
		t.Fatalf("member did not keep serving past a malformed request: %v", serveErr)
	}
}

func TestLeaderSurfacesMemberDropout(t *testing.T) {
	// A member that disappears mid-protocol (after attestation) must fail
	// the run with a clear error; the paper makes no liveness guarantees
	// beyond detection.
	cohort := testCohort(t, 40, 60, 7)
	authority, err := attest.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	platformL, _ := enclave.NewPlatform()
	leader, err := NewLeader("leader", cohort.Case, platformL, authority)
	if err != nil {
		t.Fatal(err)
	}

	leaderEnd, memberEnd := transport.Pipe()
	// Impersonate a member that completes attestation, then dies.
	go func() {
		platformM, _ := enclave.NewPlatform()
		enc, err := platformM.Load(CodeIdentity, enclave.Config{})
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		if _, err := attestConn(memberEnd, authority, enc, false); err != nil {
			t.Errorf("attest: %v", err)
			return
		}
		memberEnd.Close() // crash immediately after the handshake
	}()

	_, err = leader.Run([]transport.Conn{leaderEnd}, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{})
	if err == nil {
		t.Fatal("leader completed despite member dropout")
	}
}

func TestLeaderRejectsUnattestedPeer(t *testing.T) {
	// A peer that never sends an attestation offer (sends junk instead)
	// must be rejected at handshake time.
	cohort := testCohort(t, 30, 40, 9)
	authority, _ := attest.NewAuthority()
	platformL, _ := enclave.NewPlatform()
	leader, err := NewLeader("leader", cohort.Case, platformL, authority)
	if err != nil {
		t.Fatal(err)
	}
	leaderEnd, peerEnd := transport.Pipe()
	go func() {
		// Consume the leader's offer, reply with garbage.
		if _, err := peerEnd.Recv(); err != nil {
			return
		}
		_ = peerEnd.Send(transport.Message{Kind: KindCountsReply, Payload: []byte("junk")})
	}()
	if _, err := leader.Run([]transport.Conn{leaderEnd}, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("unattested peer: %v, want protocol violation", err)
	}
}

func TestNewMemberValidation(t *testing.T) {
	authority, _ := attest.NewAuthority()
	platform, _ := enclave.NewPlatform()
	if _, err := NewMember("m", nil, platform, authority); err == nil {
		t.Error("nil shard must fail")
	}
	if _, err := NewLeader("l", nil, platform, authority); err == nil {
		t.Error("nil leader shard must fail")
	}
}

func TestRunInProcessEmpty(t *testing.T) {
	cohort := testCohort(t, 10, 10, 1)
	if _, err := RunInProcess(nil, cohort.Reference, core.DefaultConfig(), core.CollusionPolicy{}); !errors.Is(err, core.ErrNoMembers) {
		t.Fatalf("got %v, want ErrNoMembers", err)
	}
}
