package federation

import (
	"context"
	"errors"
	"fmt"

	"gendpr/internal/checkpoint"
	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
)

// ErrNoElectableLeader is returned when every candidate leader has died and
// nobody is left to coordinate the assessment.
var ErrNoElectableLeader = errors.New("federation: every candidate leader has failed")

// failoverHook lets the chaos harness schedule a leader death for one
// attempt: it may wrap the attempt's checkpoint store, and it receives the
// cancel function that stands in for the leader process dying. Production
// runs pass nil.
type failoverHook func(attempt, leaderIdx int, cancel context.CancelFunc, store checkpoint.Store) checkpoint.Store

// RunInProcessWithFailover is RunInProcessWithOptions with Section 5.2
// leader failover layered on top: when the elected leader dies mid-run (its
// run context is canceled), the survivors re-run the committed-nonce election
// among themselves — a dead leader is struck from the electable set, though
// its restarted node keeps contributing its shard as an ordinary member — and
// the new leader resumes the assessment from the latest checkpoint rather
// than recomputing completed phases. When opts.Checkpoints is nil the
// successive leaders share an in-memory store; pass a checkpoint.FileStore to
// model durable on-disk snapshots.
func RunInProcessWithFailover(ctx context.Context, shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions) (*Result, error) {
	return runInProcessFailover(ctx, shards, reference, cfg, policy, opts, nil)
}

func runInProcessFailover(ctx context.Context, shards []*genome.Matrix, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions, hook failoverHook) (*Result, error) {
	g := len(shards)
	if g == 0 {
		return nil, core.ErrNoMembers
	}
	if opts.Checkpoints == nil {
		opts.Checkpoints = checkpoint.NewMemStore()
	}
	authority, err := attest.NewAuthority()
	if err != nil {
		return nil, fmt.Errorf("federation: %w", err)
	}

	dead := make(map[int]bool, g)
	var former []int
	for attempt := 0; ; attempt++ {
		// Re-run the Section 5.2 election over the surviving candidates. The
		// shard identities (and with them the checkpoint fingerprint) stay
		// fixed; only who coordinates changes.
		electable := make([]int, 0, g)
		for i := 0; i < g; i++ {
			if !dead[i] {
				electable = append(electable, i)
			}
		}
		if len(electable) == 0 {
			return nil, ErrNoElectableLeader
		}
		nonces, err := randomNonces(len(electable))
		if err != nil {
			return nil, err
		}
		idx, err := ElectLeader(nonces, len(electable))
		if err != nil {
			return nil, err
		}
		leaderIdx := electable[idx]

		platform, err := enclave.NewPlatform()
		if err != nil {
			return nil, fmt.Errorf("federation: %w", err)
		}
		leader, err := NewLeader(fmt.Sprintf("gdo-%d", leaderIdx), shards[leaderIdx], platform, authority)
		if err != nil {
			return nil, err
		}

		base := ctx
		if base == nil {
			base = context.Background()
		}
		runCtx, cancel := context.WithCancel(base)
		attemptOpts := opts
		if hook != nil {
			attemptOpts.Checkpoints = hook(attempt, leaderIdx, cancel, opts.Checkpoints)
		}
		res, err := runWithLeader(runCtx, leader, authority, leaderIdx, shards, reference, cfg, policy, attemptOpts, false, nil, nil)
		cancel()
		if err == nil {
			res.FormerLeaders = append([]int(nil), former...)
			return res, nil
		}
		if ctx != nil && ctx.Err() != nil {
			// The whole federation was canceled, not just this leader.
			return nil, ctx.Err()
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
		// The leader died mid-run: strike it from the electable set, keep its
		// checkpoints, and let the survivors elect a successor.
		dead[leaderIdx] = true
		former = append(former, leaderIdx)
	}
}
