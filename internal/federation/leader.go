package federation

import (
	"fmt"
	"sync"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
	"gendpr/internal/transport"
)

// Leader is the randomly elected coordinator GDO. Like every member it holds
// a private local shard; additionally its trusted coordination module
// aggregates the other members' encrypted intermediate results and runs the
// assessment pipeline.
type Leader struct {
	id        string
	shard     *genome.Matrix
	enclave   *enclave.Enclave
	authority *attest.Authority
}

// NewLeader creates the coordinator node.
func NewLeader(id string, shard *genome.Matrix, platform *enclave.Platform, authority *attest.Authority) (*Leader, error) {
	if shard == nil {
		return nil, fmt.Errorf("federation: leader %s needs a genotype shard", id)
	}
	enc, err := platform.Load(CodeIdentity, enclave.Config{})
	if err != nil {
		return nil, fmt.Errorf("federation: leader %s: %w", id, err)
	}
	return &Leader{id: id, shard: shard, enclave: enc, authority: authority}, nil
}

// ID returns the leader identifier.
func (l *Leader) ID() string { return l.id }

// Run attests every member connection, executes the assessment over the
// federation (leader shard plus remote members), broadcasts the final
// selection, and shuts the members down. The raw connections are owned by
// the caller and are not closed.
func (l *Leader) Run(memberConns []transport.Conn, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy) (*core.Report, error) {
	secure := make([]transport.Conn, len(memberConns))
	for i, raw := range memberConns {
		conn, err := attestConn(raw, l.authority, l.enclave, true)
		if err != nil {
			return nil, fmt.Errorf("federation: leader attesting member %d: %w", i, err)
		}
		secure[i] = conn
	}

	providers := make([]core.Provider, 0, len(secure)+1)
	providers = append(providers, core.NewLocalMember(l.shard))
	for i, conn := range secure {
		providers = append(providers, &remoteProvider{conn: conn, index: i})
	}

	report, err := core.RunAssessment(providers, reference, cfg, policy, l.enclave)
	if err != nil {
		return nil, err
	}

	payload := encodeResult(report.Selection.AfterMAF, report.Selection.AfterLD, report.Selection.Safe)
	for i, conn := range secure {
		if err := conn.Send(transport.Message{Kind: KindResult, Payload: payload}); err != nil {
			return nil, fmt.Errorf("federation: broadcasting result to member %d: %w", i, err)
		}
		if err := conn.Send(transport.Message{Kind: KindShutdown}); err != nil {
			return nil, fmt.Errorf("federation: shutting down member %d: %w", i, err)
		}
	}
	return report, nil
}

// remoteProvider adapts one attested member connection to the core.Provider
// interface the assessment pipeline consumes. Calls are synchronous
// request/response exchanges; the mutex keeps concurrent callers (the
// driver's parallel fetches and parallel-combination mode) from interleaving
// requests on the shared connection.
type remoteProvider struct {
	mu    sync.Mutex
	conn  transport.Conn
	index int
}

var _ core.Provider = (*remoteProvider)(nil)

func (r *remoteProvider) roundTrip(req transport.Message, wantKind uint16) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// The mutex exists to pair each request with its reply on the shared
	// connection: holding it across Send+Recv IS the serialization, it
	// guards no other state, and a stalled member blocks only callers that
	// need this same member's answer.
	//gendpr:allow(lockacrosssend): per-connection RPC serializer; the lock scope is exactly one request/response exchange
	if err := r.conn.Send(req); err != nil {
		return nil, fmt.Errorf("federation: member %d send: %w", r.index, err)
	}
	//gendpr:allow(lockacrosssend): same request/response pairing as the Send above
	reply, err := r.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("federation: member %d recv: %w", r.index, err)
	}
	if reply.Kind == KindError {
		return nil, fmt.Errorf("federation: member %d reported: %s", r.index, reply.Payload)
	}
	if reply.Kind != wantKind {
		return nil, fmt.Errorf("%w: member %d replied kind %d, want %d", ErrProtocol, r.index, reply.Kind, wantKind)
	}
	return reply.Payload, nil
}

func (r *remoteProvider) Counts() ([]int64, error) {
	payload, err := r.roundTrip(transport.Message{Kind: KindCountsRequest}, KindCountsReply)
	if err != nil {
		return nil, err
	}
	counts, _, err := decodeCounts(payload)
	return counts, err
}

func (r *remoteProvider) CaseN() (int64, error) {
	payload, err := r.roundTrip(transport.Message{Kind: KindCountsRequest}, KindCountsReply)
	if err != nil {
		return 0, err
	}
	_, n, err := decodeCounts(payload)
	return n, err
}

func (r *remoteProvider) PairStats(a, b int) (genome.PairStats, error) {
	payload, err := r.roundTrip(transport.Message{Kind: KindPairRequest, Payload: encodePairRequest(a, b)}, KindPairReply)
	if err != nil {
		return genome.PairStats{}, err
	}
	return decodePairStats(payload)
}

// PairStatsBatch implements core.BatchPairProvider: one round trip for a
// whole LD sweep's worth of pairs.
func (r *remoteProvider) PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error) {
	payload, err := r.roundTrip(transport.Message{
		Kind:    KindPairBatchRequest,
		Payload: encodePairBatchRequest(pairs),
	}, KindPairBatchReply)
	if err != nil {
		return nil, err
	}
	stats, err := decodePairBatchReply(payload)
	if err != nil {
		return nil, err
	}
	if len(stats) != len(pairs) {
		return nil, fmt.Errorf("%w: member %d returned %d stats for %d pairs", ErrProtocol, r.index, len(stats), len(pairs))
	}
	return stats, nil
}

func (r *remoteProvider) LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	payload, err := r.roundTrip(transport.Message{Kind: KindLRRequest, Payload: encodeLRRequest(cols, caseFreq, refFreq)}, KindLRReply)
	if err != nil {
		return nil, err
	}
	// Decode straight into the bit-packed form: the leader enclave never
	// materializes a member's dense LR-matrix.
	m, err := lrtest.DecodeWireBit(payload)
	if err != nil {
		return nil, fmt.Errorf("federation: member %d LR-matrix: %w", r.index, err)
	}
	return m, nil
}
