package federation

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
	"gendpr/internal/transport"
)

// ErrMemberReported marks an error the member itself computed and reported
// via KindError. These are deterministic — a malformed request or tampered
// payload fails the same way on every retry — so the leader never retries
// them and the resilient runner treats them as run-fatal.
var ErrMemberReported = errors.New("federation: member reported an error")

// Leader is the randomly elected coordinator GDO. Like every member it holds
// a private local shard; additionally its trusted coordination module
// aggregates the other members' encrypted intermediate results and runs the
// assessment pipeline.
type Leader struct {
	id        string
	shard     *genome.Matrix
	enclave   *enclave.Enclave
	authority *attest.Authority
}

// NewLeader creates the coordinator node.
func NewLeader(id string, shard *genome.Matrix, platform *enclave.Platform, authority *attest.Authority) (*Leader, error) {
	if shard == nil {
		return nil, fmt.Errorf("federation: leader %s needs a genotype shard", id)
	}
	enc, err := platform.Load(CodeIdentity, enclave.Config{})
	if err != nil {
		return nil, fmt.Errorf("federation: leader %s: %w", id, err)
	}
	return &Leader{id: id, shard: shard, enclave: enc, authority: authority}, nil
}

// ID returns the leader identifier.
func (l *Leader) ID() string { return l.id }

// MemberLink describes one member connection the leader drives.
type MemberLink struct {
	// Conn is the established raw (pre-attestation) connection.
	Conn transport.Conn
	// Name identifies the member in errors and logs.
	Name string
	// Redial, when non-nil, re-establishes a raw connection to the member
	// after a failure; the leader re-attests it before reuse. Nil disables
	// reconnection: the first transport failure declares the member failed.
	Redial func() (transport.Conn, error)
}

// Run attests every member connection, executes the assessment over the
// federation (leader shard plus remote members), broadcasts the final
// selection, and shuts the members down. The raw connections are owned by
// the caller and are not closed. It is RunLinks with the zero RunOptions:
// no deadlines, no retries, abort on any member failure.
func (l *Leader) Run(memberConns []transport.Conn, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy) (*core.Report, error) {
	links := make([]MemberLink, len(memberConns))
	for i, c := range memberConns {
		links[i] = MemberLink{Conn: c, Name: strconv.Itoa(i)}
	}
	return l.RunLinks(links, reference, cfg, policy, RunOptions{})
}

// RunLinks is Run with explicit fault-tolerance options: per-exchange
// deadlines, retry with redial and re-attestation, and quorum degradation.
// Connections the leader itself re-establishes via link.Redial are closed
// before returning; the initial link connections stay owned by the caller.
//
// When opts.MinQuorum is positive, the returned Report may list excluded
// members in Report.Excluded; entries are provider indices where 0 is the
// leader's own shard and i+1 is links[i].
func (l *Leader) RunLinks(links []MemberLink, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions) (*core.Report, error) {
	return l.RunLinksContext(nil, links, reference, cfg, policy, opts)
}

// RunLinksContext is RunLinks under a context: cancellation interrupts
// in-flight member exchanges and retry backoffs, and the assessment aborts at
// the next phase boundary with ctx.Err(). A nil or never-canceled context
// reproduces RunLinks exactly. When opts.Checkpoints is set, link names are
// the stable identities the checkpoint is keyed by, so a re-elected leader
// resuming a crashed run must address members by the same names.
func (l *Leader) RunLinksContext(ctx context.Context, links []MemberLink, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions) (*core.Report, error) {
	remotes := make([]*remoteProvider, len(links))
	for i, link := range links {
		r := &remoteProvider{
			name:   link.Name,
			ctx:    ctx,
			opts:   opts,
			redial: link.Redial,
			attest: func(raw transport.Conn) (*transport.SecureConn, error) {
				return attestConnContext(ctx, raw, l.authority, l.enclave, true, opts.RPCTimeout)
			},
		}
		if opts.OnEvent != nil {
			name := link.Name
			r.emit = func(event string) {
				opts.OnEvent(MemberEvent{Member: name, Event: event})
			}
		}
		conn, err := r.attest(link.Conn)
		if err != nil {
			err = fmt.Errorf("federation: leader attesting member %s: %w", link.Name, err)
			if opts.MinQuorum <= 0 {
				return nil, err
			}
			// Degradation is on: carry the member in the failed state so the
			// assessment can exclude it instead of aborting the federation.
			// r.conn stays nil — a member without an attested channel is
			// never sent anything (the health gate precedes every exchange),
			// and the caller keeps ownership of the raw connection.
			r.health = HealthFailed
			r.failCause = err
		} else {
			r.conn = conn
		}
		remotes[i] = r
	}
	defer func() {
		for _, r := range remotes {
			r.closeOwned()
		}
	}()

	providers := make([]core.Provider, 0, len(remotes)+1)
	names := make([]string, 0, len(remotes)+1)
	providers = append(providers, core.NewLocalMember(l.shard))
	names = append(names, l.id)
	for _, r := range remotes {
		providers = append(providers, r)
		names = append(names, r.name)
	}

	byName := make(map[string]*remoteProvider, len(remotes))
	for _, r := range remotes {
		byName[r.name] = r
	}
	resilience := core.Resilience{
		MinQuorum:   opts.MinQuorum,
		Byzantine:   opts.Byzantine,
		AllowRejoin: opts.AllowRejoin,
	}
	if opts.Byzantine || opts.AllowRejoin || opts.OnEvent != nil {
		resilience.OnTransition = func(member, event, phase string) {
			if event == "byzantine" {
				// Quarantine the connection too: the result broadcast must
				// skip it and a rejoin attempt must be refused even if the
				// equivocation was detected runner-side (plausibility checks)
				// rather than on this provider's own digest ledger.
				if r, ok := byName[member]; ok {
					r.markByzantine(phase)
				}
			}
			if opts.OnEvent != nil {
				opts.OnEvent(MemberEvent{Member: member, Event: event, Phase: phase})
			}
		}
	}

	report, err := core.RunAssessmentResilientWithOptions(providers, reference, cfg, policy, l.enclave,
		resilience,
		core.AssessmentOptions{Context: ctx, ProviderNames: names, Checkpoints: opts.Checkpoints,
			RetainCheckpoints: opts.RetainCheckpoints})
	if err != nil {
		return nil, err
	}

	excluded := make(map[int]bool, len(report.Excluded))
	for _, e := range report.Excluded {
		excluded[e] = true
	}
	payload := encodeResult(report.Selection.AfterMAF, report.Selection.AfterLD, report.Selection.Safe)
	for i, r := range remotes {
		if excluded[i+1] {
			continue
		}
		err := r.notify(
			transport.Message{Kind: KindResult, Payload: payload},
			transport.Message{Kind: KindShutdown},
		)
		if err != nil && opts.MinQuorum <= 0 {
			return nil, fmt.Errorf("federation: broadcasting result to member %s: %w", links[i].Name, err)
		}
		// Under degradation a member that cannot receive its copy of the
		// result does not invalidate the leader's report; its serving loop
		// terminates when the connection closes.
	}
	return report, nil
}

// remoteProvider adapts one attested member connection to the core.Provider
// interface the assessment pipeline consumes. Calls are synchronous
// request/response exchanges; the mutex keeps concurrent callers (the
// driver's parallel fetches and parallel-combination mode) from interleaving
// requests on the shared connection, and guards the health state machine
// (healthy → retrying → failed) plus the reconnect cycle.
type remoteProvider struct {
	name   string
	ctx    context.Context // run context; nil means never canceled
	opts   RunOptions
	redial func() (transport.Conn, error)
	attest func(raw transport.Conn) (*transport.SecureConn, error)
	// emit, when non-nil, reports transport-level health transitions
	// ("retrying", "healthy", "failed"). It may be called with r.mu held.
	emit func(event string)

	mu sync.Mutex
	// conn is the attested AEAD channel. Its static type is deliberately
	// *transport.SecureConn, never the bare Conn interface: every payload a
	// remoteProvider sends carries privacy-bearing intermediates, and the
	// secretflow analyzer uses this type as the proof they leave encrypted.
	// It is nil exactly when health is HealthFailed from construction.
	conn      *transport.SecureConn
	owned     bool // conn was created by reconnect, not by the caller
	health    Health
	failCause error

	// Counts and CaseN answers arrive in the same KindCountsReply; fetch
	// once and serve both from the cache.
	summaryLoaded bool
	counts        []int64
	caseN         int64

	// ledger maps every request the member has answered to the digest of
	// its reply. A member must answer the same query identically across
	// deliveries — the payloads are pure functions of its immutable shard —
	// so a second delivery (retry after redial, post-reconnect audit,
	// resume replay) with a different digest is equivocation: the member is
	// quarantined and the mismatching digests become the blame evidence.
	ledger map[ledgerKey][sha256.Size]byte
}

// ledgerKey identifies one member query: the wire kind plus the digest of
// the request payload.
type ledgerKey struct {
	kind uint16
	req  [sha256.Size]byte
}

var (
	_ core.Provider           = (*remoteProvider)(nil)
	_ core.BatchPairProvider  = (*remoteProvider)(nil)
	_ core.PatternProvider    = (*remoteProvider)(nil)
	_ core.SummaryAuditor     = (*remoteProvider)(nil)
	_ core.RejoinableProvider = (*remoteProvider)(nil)
)

// Health returns the member's current health state.
func (r *remoteProvider) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health
}

// closeOwned closes the connection if the provider re-established it; the
// caller's original connection is left open per the Run contract.
func (r *remoteProvider) closeOwned() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.owned && r.conn != nil {
		_ = r.conn.Close()
	}
}

// markByzantine quarantines the connection after the resilient runner blamed
// this member: every further request, the result broadcast, and any rejoin
// attempt are refused.
func (r *remoteProvider) markByzantine(phase string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.health == HealthByzantine {
		return
	}
	r.health = HealthByzantine
	r.failCause = fmt.Errorf("federation: member %s quarantined as byzantine during %s", r.name, phase)
}

// memberFailed wraps the terminal cause so core.FailedMembers recognizes the
// member as degradable.
func (r *remoteProvider) memberFailed(cause error) error {
	return fmt.Errorf("federation: member %s: %w (%v)", r.name, core.ErrMemberFailed, cause)
}

// retryable reports whether a retry on a fresh connection could change the
// outcome. Member-reported and protocol-violation errors are deterministic
// or adversarial, cancellation is the caller telling the run to stop, an
// authentication failure means the channel carried a forged or tampered
// frame (retrying hands the adversary another attempt), and equivocation is
// the member caught lying; only transport-level failures are worth retrying.
func retryable(err error) bool {
	return !errors.Is(err, ErrMemberReported) && !errors.Is(err, ErrProtocol) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, transport.ErrAuth) && !errors.Is(err, core.ErrEquivocation)
}

// sleepCtx sleeps for d unless the context is canceled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// reconnectLocked replaces the broken connection with a freshly redialed and
// re-attested one. The old channel is always abandoned: after a lost or
// faulted message its AEAD sequence numbers are desynchronized, so replies
// could never authenticate again.
func (r *remoteProvider) reconnectLocked() error {
	if r.conn != nil {
		_ = r.conn.Close()
	}
	raw, err := r.redial()
	if err != nil {
		return fmt.Errorf("redial: %w", err)
	}
	secure, err := r.attest(raw)
	if err != nil {
		_ = raw.Close()
		return fmt.Errorf("re-attest: %w", err)
	}
	r.conn = secure
	r.owned = true
	return nil
}

// exchangeLocked performs one request/response exchange under the
// configured per-operation deadline. Callers hold r.mu.
func (r *remoteProvider) exchangeLocked(req transport.Message, wantKind uint16) ([]byte, error) {
	// The mutex exists to pair each request with its reply on the shared
	// connection: holding it across Send+Recv IS the serialization, it
	// guards no other state, and a stalled member blocks only callers that
	// need this same member's answer.
	//gendpr:allow(lockacrosssend): per-connection RPC serializer; the lock scope is exactly one request/response exchange
	if err := transport.SendContext(r.ctx, r.conn, req, r.opts.RPCTimeout); err != nil {
		return nil, fmt.Errorf("federation: member %s send: %w", r.name, err)
	}
	//gendpr:allow(lockacrosssend): same request/response pairing as the send above
	reply, err := transport.RecvContext(r.ctx, r.conn, r.opts.RPCTimeout)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s recv: %w", r.name, err)
	}
	if reply.Kind == KindError {
		//gendpr:allow(secretflow): a KindError payload is the member's own error string, redacted member-side before sending
		return nil, fmt.Errorf("%w: member %s: %s", ErrMemberReported, r.name, reply.Payload)
	}
	if reply.Kind != wantKind {
		return nil, fmt.Errorf("%w: member %s replied kind %d, want %d", ErrProtocol, r.name, reply.Kind, wantKind)
	}
	return reply.Payload, nil
}

// roundTripLocked is the retry engine: exchange, and on transport failure
// back off, redial, re-attest, and re-issue until the budget runs out and
// the member is declared failed. Every successful reply passes through the
// digest ledger, and every reconnect replays an already-answered query as an
// equivocation audit. Callers hold r.mu.
func (r *remoteProvider) roundTripLocked(req transport.Message, wantKind uint16) ([]byte, error) {
	if r.health == HealthByzantine {
		return nil, r.failCause
	}
	if r.health == HealthFailed {
		return nil, r.memberFailed(r.failCause)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if r.redial == nil || attempt > r.opts.MaxRetries {
				r.health = HealthFailed
				r.failCause = lastErr
				r.emitEvent("failed")
				return nil, r.memberFailed(lastErr)
			}
			if r.health != HealthRetrying {
				r.emitEvent("retrying")
			}
			r.health = HealthRetrying
			if err := sleepCtx(r.ctx, backoffDelay(r.opts, attempt)); err != nil {
				// Cancellation mid-backoff is not a member failure: surface it
				// unwrapped so the run aborts rather than degrades.
				return nil, err
			}
			if err := r.reconnectLocked(); err != nil {
				lastErr = err
				continue
			}
			if err := r.auditReconnectLocked(); err != nil {
				if !retryable(err) {
					return nil, err
				}
				lastErr = err
				continue
			}
		}
		payload, err := r.exchangeLocked(req, wantKind)
		if err == nil {
			if lerr := r.checkLedgerLocked(req, payload); lerr != nil {
				return nil, lerr
			}
			if r.health == HealthRetrying {
				r.emitEvent("healthy")
			}
			r.health = HealthHealthy
			return payload, nil
		}
		if errors.Is(err, transport.ErrAuth) {
			// A frame that fails AEAD authentication is tampering, not loss:
			// declare the member failed (degradable under quorum) instead of
			// handing the adversary retry attempts.
			r.health = HealthFailed
			r.failCause = err
			r.emitEvent("failed")
			return nil, r.memberFailed(err)
		}
		if !retryable(err) {
			return nil, err
		}
		lastErr = err
	}
}

// emitEvent reports a transport-level health transition, if anyone listens.
func (r *remoteProvider) emitEvent(event string) {
	if r.emit != nil {
		r.emit(event)
	}
}

// payloadDigest computes the equivocation-ledger commitment for one wire
// payload.
//
//gendpr:declassifier(release): a SHA-256 digest is preimage-resistant commitment evidence — blame records carry it to prove an answer changed, never to reveal what the answer was
func payloadDigest(b []byte) [sha256.Size]byte {
	return sha256.Sum256(b)
}

// checkLedgerLocked records the reply digest for a query on first sight and
// verifies it on every later delivery. A mismatch quarantines the member and
// returns the equivocation evidence. Callers hold r.mu.
func (r *remoteProvider) checkLedgerLocked(req transport.Message, payload []byte) error {
	key := ledgerKey{kind: req.Kind, req: payloadDigest(req.Payload)}
	observed := payloadDigest(payload)
	if r.ledger == nil {
		r.ledger = make(map[ledgerKey][sha256.Size]byte)
	}
	prior, seen := r.ledger[key]
	if !seen {
		r.ledger[key] = observed
		return nil
	}
	if prior == observed {
		return nil
	}
	eq := &core.EquivocationError{
		Phase:    phaseForKind(req.Kind),
		Query:    fmt.Sprintf("%s:%x", queryLabel(req.Kind), key.req[:4]),
		Prior:    prior[:],
		Observed: observed[:],
	}
	err := fmt.Errorf("federation: member %s: %w", r.name, eq)
	r.health = HealthByzantine
	r.failCause = err
	return err
}

// auditReconnectLocked re-issues an already-answered query on the freshly
// attested channel before trusting it with new work: a member (or an
// on-path adversary holding its keys) that answered honestly before the
// redial and differently after is caught here, not silently re-admitted.
// The summary query is the cheapest replay and is always the first thing a
// member ever answered. Callers hold r.mu.
func (r *remoteProvider) auditReconnectLocked() error {
	if !r.summaryLoaded {
		return nil
	}
	payload, err := r.exchangeLocked(transport.Message{Kind: KindCountsRequest}, KindCountsReply)
	if err != nil {
		return err
	}
	return r.checkLedgerLocked(transport.Message{Kind: KindCountsRequest}, payload)
}

// phaseForKind maps a request kind to the protocol phase it serves, for
// blame attribution.
func phaseForKind(kind uint16) string {
	switch kind {
	case KindCountsRequest:
		return core.PhaseSummary
	case KindPairRequest, KindPairBatchRequest:
		return core.PhaseLD
	case KindLRRequest:
		return core.PhaseLR
	default:
		return fmt.Sprintf("kind %d", kind)
	}
}

// queryLabel names a request kind in blame records.
func queryLabel(kind uint16) string {
	switch kind {
	case KindCountsRequest:
		return "counts"
	case KindPairRequest:
		return "pair"
	case KindPairBatchRequest:
		return "pair-batch"
	case KindLRRequest:
		return "lr"
	default:
		return fmt.Sprintf("kind-%d", kind)
	}
}

func (r *remoteProvider) roundTrip(req transport.Message, wantKind uint16) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.roundTripLocked(req, wantKind)
}

// notify delivers fire-and-forget messages (result broadcast, shutdown)
// under the send deadline. A failed member is skipped silently: it already
// missed the protocol.
func (r *remoteProvider) notify(msgs ...transport.Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.health == HealthFailed || r.health == HealthByzantine {
		return r.memberFailed(r.failCause)
	}
	for _, m := range msgs {
		//gendpr:allow(lockacrosssend): broadcast serialized on the same per-connection RPC lock
		if err := transport.SendContext(r.ctx, r.conn, m, r.opts.RPCTimeout); err != nil {
			return fmt.Errorf("federation: member %s send: %w", r.name, err)
		}
	}
	return nil
}

// Rejoin implements core.RejoinableProvider: a crash-failed member gets one
// fresh redialed and re-attested channel and a clean health slate, so the
// resilient runner can audit it and re-admit it at the next phase boundary.
// A quarantined (byzantine) member is refused outright.
func (r *remoteProvider) Rejoin() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.health == HealthByzantine {
		return fmt.Errorf("federation: member %s is quarantined and barred from rejoining: %w", r.name, core.ErrEquivocation)
	}
	if r.redial == nil {
		return fmt.Errorf("federation: member %s cannot rejoin: no redial path", r.name)
	}
	if err := r.reconnectLocked(); err != nil {
		return fmt.Errorf("federation: member %s rejoin: %w", r.name, err)
	}
	r.health = HealthHealthy
	r.failCause = nil
	return nil
}

// AuditSummary implements core.SummaryAuditor: it re-asks the member for its
// summary over the live channel, bypassing the local cache. The reply passes
// through the digest ledger, so a member that changed its story since the
// first delivery is caught as an equivocator right here.
func (r *remoteProvider) AuditSummary() ([]int64, int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	payload, err := r.roundTripLocked(transport.Message{Kind: KindCountsRequest}, KindCountsReply)
	if err != nil {
		return nil, 0, err
	}
	counts, n, err := decodeCounts(payload)
	if err != nil {
		return nil, 0, err
	}
	return counts, n, nil
}

// loadSummaryLocked fetches the member's counts/population reply once; both
// Counts and CaseN are served from it. Callers hold r.mu.
func (r *remoteProvider) loadSummaryLocked() error {
	if r.summaryLoaded {
		return nil
	}
	payload, err := r.roundTripLocked(transport.Message{Kind: KindCountsRequest}, KindCountsReply)
	if err != nil {
		return err
	}
	counts, n, err := decodeCounts(payload)
	if err != nil {
		return err
	}
	r.counts, r.caseN, r.summaryLoaded = counts, n, true
	return nil
}

func (r *remoteProvider) Counts() ([]int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.loadSummaryLocked(); err != nil {
		return nil, err
	}
	return r.counts, nil
}

func (r *remoteProvider) CaseN() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.loadSummaryLocked(); err != nil {
		return 0, err
	}
	return r.caseN, nil
}

func (r *remoteProvider) PairStats(a, b int) (genome.PairStats, error) {
	payload, err := r.roundTrip(transport.Message{Kind: KindPairRequest, Payload: encodePairRequest(a, b)}, KindPairReply)
	if err != nil {
		return genome.PairStats{}, err
	}
	return decodePairStats(payload)
}

// PairStatsBatch implements core.BatchPairProvider: one round trip for a
// whole LD sweep's worth of pairs.
func (r *remoteProvider) PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error) {
	payload, err := r.roundTrip(transport.Message{
		Kind:    KindPairBatchRequest,
		Payload: encodePairBatchRequest(pairs),
	}, KindPairBatchReply)
	if err != nil {
		return nil, err
	}
	stats, err := decodePairBatchReply(payload)
	if err != nil {
		return nil, err
	}
	if len(stats) != len(pairs) {
		return nil, fmt.Errorf("%w: member %s returned %d stats for %d pairs", ErrProtocol, r.name, len(stats), len(pairs))
	}
	return stats, nil
}

func (r *remoteProvider) LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	payload, err := r.roundTrip(transport.Message{Kind: KindLRRequest, Payload: encodeLRRequest(cols, caseFreq, refFreq)}, KindLRReply)
	if err != nil {
		return nil, err
	}
	// Decode straight into the bit-packed form: the leader enclave never
	// materializes a member's dense LR-matrix.
	m, err := lrtest.DecodeWireBit(payload)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s LR-matrix: %w", r.name, err)
	}
	return m, nil
}

// LRPattern implements core.PatternProvider over the existing Phase 3 wire
// kinds: a frequency-free KindLRRequest asks for the genotype bit-pattern.
func (r *remoteProvider) LRPattern(cols []int) (*lrtest.BitMatrix, error) {
	if len(cols) == 0 {
		// A zero-column pattern request is indistinguishable on the wire from
		// an empty LR-matrix request, and the replies agree shape-for-shape
		// (an LR-matrix with no columns carries no representatives), so reuse
		// the matrix path.
		return r.LRMatrix(nil, nil, nil)
	}
	payload, err := r.roundTrip(transport.Message{Kind: KindLRRequest, Payload: encodeLRRequest(cols, nil, nil)}, KindLRReply)
	if err != nil {
		return nil, err
	}
	p, err := lrtest.DecodePatternWire(payload)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s genotype pattern: %w", r.name, err)
	}
	return p, nil
}
