package federation

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gendpr/internal/core"
	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
	"gendpr/internal/transport"
)

// ErrMemberReported marks an error the member itself computed and reported
// via KindError. These are deterministic — a malformed request or tampered
// payload fails the same way on every retry — so the leader never retries
// them and the resilient runner treats them as run-fatal.
var ErrMemberReported = errors.New("federation: member reported an error")

// Leader is the randomly elected coordinator GDO. Like every member it holds
// a private local shard; additionally its trusted coordination module
// aggregates the other members' encrypted intermediate results and runs the
// assessment pipeline.
type Leader struct {
	id        string
	shard     *genome.Matrix
	enclave   *enclave.Enclave
	authority *attest.Authority
}

// NewLeader creates the coordinator node.
func NewLeader(id string, shard *genome.Matrix, platform *enclave.Platform, authority *attest.Authority) (*Leader, error) {
	if shard == nil {
		return nil, fmt.Errorf("federation: leader %s needs a genotype shard", id)
	}
	enc, err := platform.Load(CodeIdentity, enclave.Config{})
	if err != nil {
		return nil, fmt.Errorf("federation: leader %s: %w", id, err)
	}
	return &Leader{id: id, shard: shard, enclave: enc, authority: authority}, nil
}

// ID returns the leader identifier.
func (l *Leader) ID() string { return l.id }

// MemberLink describes one member connection the leader drives.
type MemberLink struct {
	// Conn is the established raw (pre-attestation) connection.
	Conn transport.Conn
	// Name identifies the member in errors and logs.
	Name string
	// Redial, when non-nil, re-establishes a raw connection to the member
	// after a failure; the leader re-attests it before reuse. Nil disables
	// reconnection: the first transport failure declares the member failed.
	Redial func() (transport.Conn, error)
}

// Run attests every member connection, executes the assessment over the
// federation (leader shard plus remote members), broadcasts the final
// selection, and shuts the members down. The raw connections are owned by
// the caller and are not closed. It is RunLinks with the zero RunOptions:
// no deadlines, no retries, abort on any member failure.
func (l *Leader) Run(memberConns []transport.Conn, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy) (*core.Report, error) {
	links := make([]MemberLink, len(memberConns))
	for i, c := range memberConns {
		links[i] = MemberLink{Conn: c, Name: strconv.Itoa(i)}
	}
	return l.RunLinks(links, reference, cfg, policy, RunOptions{})
}

// RunLinks is Run with explicit fault-tolerance options: per-exchange
// deadlines, retry with redial and re-attestation, and quorum degradation.
// Connections the leader itself re-establishes via link.Redial are closed
// before returning; the initial link connections stay owned by the caller.
//
// When opts.MinQuorum is positive, the returned Report may list excluded
// members in Report.Excluded; entries are provider indices where 0 is the
// leader's own shard and i+1 is links[i].
func (l *Leader) RunLinks(links []MemberLink, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions) (*core.Report, error) {
	return l.RunLinksContext(nil, links, reference, cfg, policy, opts)
}

// RunLinksContext is RunLinks under a context: cancellation interrupts
// in-flight member exchanges and retry backoffs, and the assessment aborts at
// the next phase boundary with ctx.Err(). A nil or never-canceled context
// reproduces RunLinks exactly. When opts.Checkpoints is set, link names are
// the stable identities the checkpoint is keyed by, so a re-elected leader
// resuming a crashed run must address members by the same names.
func (l *Leader) RunLinksContext(ctx context.Context, links []MemberLink, reference *genome.Matrix, cfg core.Config, policy core.CollusionPolicy, opts RunOptions) (*core.Report, error) {
	remotes := make([]*remoteProvider, len(links))
	for i, link := range links {
		r := &remoteProvider{
			name:   link.Name,
			ctx:    ctx,
			opts:   opts,
			redial: link.Redial,
			attest: func(raw transport.Conn) (*transport.SecureConn, error) {
				return attestConnContext(ctx, raw, l.authority, l.enclave, true, opts.RPCTimeout)
			},
		}
		conn, err := r.attest(link.Conn)
		if err != nil {
			err = fmt.Errorf("federation: leader attesting member %s: %w", link.Name, err)
			if opts.MinQuorum <= 0 {
				return nil, err
			}
			// Degradation is on: carry the member in the failed state so the
			// assessment can exclude it instead of aborting the federation.
			// r.conn stays nil — a member without an attested channel is
			// never sent anything (the health gate precedes every exchange),
			// and the caller keeps ownership of the raw connection.
			r.health = HealthFailed
			r.failCause = err
		} else {
			r.conn = conn
		}
		remotes[i] = r
	}
	defer func() {
		for _, r := range remotes {
			r.closeOwned()
		}
	}()

	providers := make([]core.Provider, 0, len(remotes)+1)
	names := make([]string, 0, len(remotes)+1)
	providers = append(providers, core.NewLocalMember(l.shard))
	names = append(names, l.id)
	for _, r := range remotes {
		providers = append(providers, r)
		names = append(names, r.name)
	}

	report, err := core.RunAssessmentResilientWithOptions(providers, reference, cfg, policy, l.enclave,
		core.Resilience{MinQuorum: opts.MinQuorum},
		core.AssessmentOptions{Context: ctx, ProviderNames: names, Checkpoints: opts.Checkpoints})
	if err != nil {
		return nil, err
	}

	excluded := make(map[int]bool, len(report.Excluded))
	for _, e := range report.Excluded {
		excluded[e] = true
	}
	payload := encodeResult(report.Selection.AfterMAF, report.Selection.AfterLD, report.Selection.Safe)
	for i, r := range remotes {
		if excluded[i+1] {
			continue
		}
		err := r.notify(
			transport.Message{Kind: KindResult, Payload: payload},
			transport.Message{Kind: KindShutdown},
		)
		if err != nil && opts.MinQuorum <= 0 {
			return nil, fmt.Errorf("federation: broadcasting result to member %s: %w", links[i].Name, err)
		}
		// Under degradation a member that cannot receive its copy of the
		// result does not invalidate the leader's report; its serving loop
		// terminates when the connection closes.
	}
	return report, nil
}

// remoteProvider adapts one attested member connection to the core.Provider
// interface the assessment pipeline consumes. Calls are synchronous
// request/response exchanges; the mutex keeps concurrent callers (the
// driver's parallel fetches and parallel-combination mode) from interleaving
// requests on the shared connection, and guards the health state machine
// (healthy → retrying → failed) plus the reconnect cycle.
type remoteProvider struct {
	name   string
	ctx    context.Context // run context; nil means never canceled
	opts   RunOptions
	redial func() (transport.Conn, error)
	attest func(raw transport.Conn) (*transport.SecureConn, error)

	mu sync.Mutex
	// conn is the attested AEAD channel. Its static type is deliberately
	// *transport.SecureConn, never the bare Conn interface: every payload a
	// remoteProvider sends carries privacy-bearing intermediates, and the
	// secretflow analyzer uses this type as the proof they leave encrypted.
	// It is nil exactly when health is HealthFailed from construction.
	conn      *transport.SecureConn
	owned     bool // conn was created by reconnect, not by the caller
	health    Health
	failCause error

	// Counts and CaseN answers arrive in the same KindCountsReply; fetch
	// once and serve both from the cache.
	summaryLoaded bool
	counts        []int64
	caseN         int64
}

var (
	_ core.Provider          = (*remoteProvider)(nil)
	_ core.BatchPairProvider = (*remoteProvider)(nil)
	_ core.PatternProvider   = (*remoteProvider)(nil)
)

// Health returns the member's current health state.
func (r *remoteProvider) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health
}

// closeOwned closes the connection if the provider re-established it; the
// caller's original connection is left open per the Run contract.
func (r *remoteProvider) closeOwned() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.owned {
		_ = r.conn.Close()
	}
}

// memberFailed wraps the terminal cause so core.FailedMembers recognizes the
// member as degradable.
func (r *remoteProvider) memberFailed(cause error) error {
	return fmt.Errorf("federation: member %s: %w (%v)", r.name, core.ErrMemberFailed, cause)
}

// retryable reports whether a retry on a fresh connection could change the
// outcome. Member-reported and protocol-violation errors are deterministic
// or adversarial, and cancellation is the caller telling the run to stop;
// only transport-level failures are worth retrying.
func retryable(err error) bool {
	return !errors.Is(err, ErrMemberReported) && !errors.Is(err, ErrProtocol) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// sleepCtx sleeps for d unless the context is canceled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// reconnectLocked replaces the broken connection with a freshly redialed and
// re-attested one. The old channel is always abandoned: after a lost or
// faulted message its AEAD sequence numbers are desynchronized, so replies
// could never authenticate again.
func (r *remoteProvider) reconnectLocked() error {
	_ = r.conn.Close()
	raw, err := r.redial()
	if err != nil {
		return fmt.Errorf("redial: %w", err)
	}
	secure, err := r.attest(raw)
	if err != nil {
		_ = raw.Close()
		return fmt.Errorf("re-attest: %w", err)
	}
	r.conn = secure
	r.owned = true
	return nil
}

// exchangeLocked performs one request/response exchange under the
// configured per-operation deadline. Callers hold r.mu.
func (r *remoteProvider) exchangeLocked(req transport.Message, wantKind uint16) ([]byte, error) {
	// The mutex exists to pair each request with its reply on the shared
	// connection: holding it across Send+Recv IS the serialization, it
	// guards no other state, and a stalled member blocks only callers that
	// need this same member's answer.
	//gendpr:allow(lockacrosssend): per-connection RPC serializer; the lock scope is exactly one request/response exchange
	if err := transport.SendContext(r.ctx, r.conn, req, r.opts.RPCTimeout); err != nil {
		return nil, fmt.Errorf("federation: member %s send: %w", r.name, err)
	}
	//gendpr:allow(lockacrosssend): same request/response pairing as the send above
	reply, err := transport.RecvContext(r.ctx, r.conn, r.opts.RPCTimeout)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s recv: %w", r.name, err)
	}
	if reply.Kind == KindError {
		//gendpr:allow(secretflow): a KindError payload is the member's own error string, redacted member-side before sending
		return nil, fmt.Errorf("%w: member %s: %s", ErrMemberReported, r.name, reply.Payload)
	}
	if reply.Kind != wantKind {
		return nil, fmt.Errorf("%w: member %s replied kind %d, want %d", ErrProtocol, r.name, reply.Kind, wantKind)
	}
	return reply.Payload, nil
}

// roundTripLocked is the retry engine: exchange, and on transport failure
// back off, redial, re-attest, and re-issue until the budget runs out and
// the member is declared failed. Callers hold r.mu.
func (r *remoteProvider) roundTripLocked(req transport.Message, wantKind uint16) ([]byte, error) {
	if r.health == HealthFailed {
		return nil, r.memberFailed(r.failCause)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if r.redial == nil || attempt > r.opts.MaxRetries {
				r.health = HealthFailed
				r.failCause = lastErr
				return nil, r.memberFailed(lastErr)
			}
			r.health = HealthRetrying
			if err := sleepCtx(r.ctx, backoffDelay(r.opts, attempt)); err != nil {
				// Cancellation mid-backoff is not a member failure: surface it
				// unwrapped so the run aborts rather than degrades.
				return nil, err
			}
			if err := r.reconnectLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		payload, err := r.exchangeLocked(req, wantKind)
		if err == nil {
			r.health = HealthHealthy
			return payload, nil
		}
		if !retryable(err) {
			return nil, err
		}
		lastErr = err
	}
}

func (r *remoteProvider) roundTrip(req transport.Message, wantKind uint16) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.roundTripLocked(req, wantKind)
}

// notify delivers fire-and-forget messages (result broadcast, shutdown)
// under the send deadline. A failed member is skipped silently: it already
// missed the protocol.
func (r *remoteProvider) notify(msgs ...transport.Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.health == HealthFailed {
		return r.memberFailed(r.failCause)
	}
	for _, m := range msgs {
		//gendpr:allow(lockacrosssend): broadcast serialized on the same per-connection RPC lock
		if err := transport.SendContext(r.ctx, r.conn, m, r.opts.RPCTimeout); err != nil {
			return fmt.Errorf("federation: member %s send: %w", r.name, err)
		}
	}
	return nil
}

// loadSummaryLocked fetches the member's counts/population reply once; both
// Counts and CaseN are served from it. Callers hold r.mu.
func (r *remoteProvider) loadSummaryLocked() error {
	if r.summaryLoaded {
		return nil
	}
	payload, err := r.roundTripLocked(transport.Message{Kind: KindCountsRequest}, KindCountsReply)
	if err != nil {
		return err
	}
	counts, n, err := decodeCounts(payload)
	if err != nil {
		return err
	}
	r.counts, r.caseN, r.summaryLoaded = counts, n, true
	return nil
}

func (r *remoteProvider) Counts() ([]int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.loadSummaryLocked(); err != nil {
		return nil, err
	}
	return r.counts, nil
}

func (r *remoteProvider) CaseN() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.loadSummaryLocked(); err != nil {
		return 0, err
	}
	return r.caseN, nil
}

func (r *remoteProvider) PairStats(a, b int) (genome.PairStats, error) {
	payload, err := r.roundTrip(transport.Message{Kind: KindPairRequest, Payload: encodePairRequest(a, b)}, KindPairReply)
	if err != nil {
		return genome.PairStats{}, err
	}
	return decodePairStats(payload)
}

// PairStatsBatch implements core.BatchPairProvider: one round trip for a
// whole LD sweep's worth of pairs.
func (r *remoteProvider) PairStatsBatch(pairs [][2]int) ([]genome.PairStats, error) {
	payload, err := r.roundTrip(transport.Message{
		Kind:    KindPairBatchRequest,
		Payload: encodePairBatchRequest(pairs),
	}, KindPairBatchReply)
	if err != nil {
		return nil, err
	}
	stats, err := decodePairBatchReply(payload)
	if err != nil {
		return nil, err
	}
	if len(stats) != len(pairs) {
		return nil, fmt.Errorf("%w: member %s returned %d stats for %d pairs", ErrProtocol, r.name, len(stats), len(pairs))
	}
	return stats, nil
}

func (r *remoteProvider) LRMatrix(cols []int, caseFreq, refFreq []float64) (*lrtest.BitMatrix, error) {
	payload, err := r.roundTrip(transport.Message{Kind: KindLRRequest, Payload: encodeLRRequest(cols, caseFreq, refFreq)}, KindLRReply)
	if err != nil {
		return nil, err
	}
	// Decode straight into the bit-packed form: the leader enclave never
	// materializes a member's dense LR-matrix.
	m, err := lrtest.DecodeWireBit(payload)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s LR-matrix: %w", r.name, err)
	}
	return m, nil
}

// LRPattern implements core.PatternProvider over the existing Phase 3 wire
// kinds: a frequency-free KindLRRequest asks for the genotype bit-pattern.
func (r *remoteProvider) LRPattern(cols []int) (*lrtest.BitMatrix, error) {
	if len(cols) == 0 {
		// A zero-column pattern request is indistinguishable on the wire from
		// an empty LR-matrix request, and the replies agree shape-for-shape
		// (an LR-matrix with no columns carries no representatives), so reuse
		// the matrix path.
		return r.LRMatrix(nil, nil, nil)
	}
	payload, err := r.roundTrip(transport.Message{Kind: KindLRRequest, Payload: encodeLRRequest(cols, nil, nil)}, KindLRReply)
	if err != nil {
		return nil, err
	}
	p, err := lrtest.DecodePatternWire(payload)
	if err != nil {
		return nil, fmt.Errorf("federation: member %s genotype pattern: %w", r.name, err)
	}
	return p, nil
}
