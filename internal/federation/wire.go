// Package federation is the GenDPR middleware proper: it runs the core
// assessment protocol across a federation of genome data owners connected by
// message transports. Every connection is bootstrapped with mutual remote
// attestation and carries only AES-256-GCM-protected intermediate results —
// raw genomes never leave a member's premises.
package federation

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"gendpr/internal/enclave"
	"gendpr/internal/enclave/attest"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
	"gendpr/internal/wire"
)

// Message kinds exchanged between the leader and members.
const (
	// KindAttestOffer carries attestation handshake material (the only
	// plaintext message; its integrity is enforced by quote verification).
	KindAttestOffer uint16 = iota + 1
	// KindCountsRequest asks a member for its Phase 1 summary statistics.
	KindCountsRequest
	// KindCountsReply carries caseLocalCounts and the local population size.
	KindCountsReply
	// KindPairRequest asks for the Phase 2 correlation statistics of a pair.
	KindPairRequest
	// KindPairReply carries one PairStats contribution.
	KindPairReply
	// KindLRRequest broadcasts pooled frequencies and asks for the member's
	// local LR-matrix over the given columns (Phase 3).
	KindLRRequest
	// KindLRReply carries the serialized local LR-matrix.
	KindLRReply
	// KindResult broadcasts the final selection to every member.
	KindResult
	// KindError reports a member-side failure to the leader.
	KindError
	// KindShutdown ends the member's serving loop.
	KindShutdown
	// KindPairBatchRequest asks for many pair statistics in one round trip.
	KindPairBatchRequest
	// KindPairBatchReply carries the batched PairStats contributions.
	KindPairBatchReply
)

// CodeIdentity is the code measured into every GenDPR enclave in this build.
// Members only talk to peers attesting this exact measurement.
var CodeIdentity = []byte("gendpr-federation-enclave-v1")

// ExpectedMeasurement returns the measurement every federation member pins.
func ExpectedMeasurement() enclave.Measurement {
	return enclave.MeasurementOf(CodeIdentity)
}

// ErrProtocol is returned for messages that violate the protocol state
// machine (unexpected kind, malformed payload).
var ErrProtocol = errors.New("federation: protocol violation")

// --- Offer codec ---

func encodeOffer(o attest.Offer) []byte {
	e := wire.NewEncoder(256)
	e.Blob(o.Quote.Measurement[:])
	e.Blob(o.Quote.ReportData[:])
	e.Blob(o.Quote.Signature)
	e.Blob(o.ECDHPub)
	e.Blob(o.Nonce[:])
	return e.Bytes()
}

func decodeOffer(b []byte) (attest.Offer, error) {
	d := wire.NewDecoder(b)
	var o attest.Offer
	meas := d.Blob()
	rd := d.Blob()
	sig := d.Blob()
	pub := d.Blob()
	nonce := d.Blob()
	if err := d.Finish(); err != nil {
		return attest.Offer{}, fmt.Errorf("%w: offer: %v", ErrProtocol, err)
	}
	if len(meas) != len(o.Quote.Measurement) || len(rd) != len(o.Quote.ReportData) || len(nonce) != len(o.Nonce) {
		return attest.Offer{}, fmt.Errorf("%w: offer field sizes", ErrProtocol)
	}
	copy(o.Quote.Measurement[:], meas)
	copy(o.Quote.ReportData[:], rd)
	o.Quote.Signature = append([]byte(nil), sig...)
	o.ECDHPub = append([]byte(nil), pub...)
	copy(o.Nonce[:], nonce)
	return o, nil
}

// --- Counts codec ---

func encodeCounts(counts []int64, caseN int64) []byte {
	e := wire.NewEncoder(16 + 8*len(counts))
	e.Int64(caseN)
	e.Int64s(counts)
	return e.Bytes()
}

func decodeCounts(b []byte) ([]int64, int64, error) {
	d := wire.NewDecoder(b)
	n := d.Int64()
	counts := d.Int64s()
	if err := d.Finish(); err != nil {
		return nil, 0, fmt.Errorf("%w: counts: %v", ErrProtocol, err)
	}
	return counts, n, nil
}

// --- Pair codec ---

func encodePairRequest(a, b int) []byte {
	e := wire.NewEncoder(16)
	e.Int(a)
	e.Int(b)
	return e.Bytes()
}

func decodePairRequest(buf []byte) (a, b int, err error) {
	d := wire.NewDecoder(buf)
	a = d.Int()
	b = d.Int()
	if err := d.Finish(); err != nil {
		return 0, 0, fmt.Errorf("%w: pair request: %v", ErrProtocol, err)
	}
	return a, b, nil
}

func encodePairStats(s genome.PairStats) []byte {
	e := wire.NewEncoder(48)
	e.Int64(s.N)
	e.Int64(s.SumX)
	e.Int64(s.SumY)
	e.Int64(s.SumXY)
	e.Int64(s.SumXX)
	e.Int64(s.SumYY)
	return e.Bytes()
}

func decodePairStats(b []byte) (genome.PairStats, error) {
	d := wire.NewDecoder(b)
	s := genome.PairStats{
		N:     d.Int64(),
		SumX:  d.Int64(),
		SumY:  d.Int64(),
		SumXY: d.Int64(),
		SumXX: d.Int64(),
		SumYY: d.Int64(),
	}
	if err := d.Finish(); err != nil {
		return genome.PairStats{}, fmt.Errorf("%w: pair stats: %v", ErrProtocol, err)
	}
	return s, nil
}

// --- Pair batch codec ---

func encodePairBatchRequest(pairs [][2]int) []byte {
	e := wire.NewEncoder(8 + 16*len(pairs))
	e.Uint64(uint64(len(pairs)))
	for _, p := range pairs {
		e.Int(p[0])
		e.Int(p[1])
	}
	return e.Bytes()
}

func decodePairBatchRequest(b []byte) ([][2]int, error) {
	d := wire.NewDecoder(b)
	n := int(d.Uint64())
	if d.Err() != nil || n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("%w: pair batch size", ErrProtocol)
	}
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i][0] = d.Int()
		pairs[i][1] = d.Int()
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: pair batch request: %v", ErrProtocol, err)
	}
	return pairs, nil
}

func encodePairBatchReply(stats []genome.PairStats) []byte {
	e := wire.NewEncoder(8 + 48*len(stats))
	e.Uint64(uint64(len(stats)))
	for _, s := range stats {
		e.Int64(s.N)
		e.Int64(s.SumX)
		e.Int64(s.SumY)
		e.Int64(s.SumXY)
		e.Int64(s.SumXX)
		e.Int64(s.SumYY)
	}
	return e.Bytes()
}

func decodePairBatchReply(b []byte) ([]genome.PairStats, error) {
	d := wire.NewDecoder(b)
	n := int(d.Uint64())
	if d.Err() != nil || n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("%w: pair batch size", ErrProtocol)
	}
	stats := make([]genome.PairStats, n)
	for i := range stats {
		stats[i] = genome.PairStats{
			N:     d.Int64(),
			SumX:  d.Int64(),
			SumY:  d.Int64(),
			SumXY: d.Int64(),
			SumXX: d.Int64(),
			SumYY: d.Int64(),
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: pair batch reply: %v", ErrProtocol, err)
	}
	return stats, nil
}

// --- LR codec ---

func encodeLRRequest(cols []int, caseFreq, refFreq []float64) []byte {
	e := wire.NewEncoder(24 + 24*len(cols))
	e.Ints(cols)
	e.Float64s(caseFreq)
	e.Float64s(refFreq)
	return e.Bytes()
}

func decodeLRRequest(b []byte) (cols []int, caseFreq, refFreq []float64, err error) {
	d := wire.NewDecoder(b)
	cols = d.Ints()
	caseFreq = d.Float64s()
	refFreq = d.Float64s()
	if err := d.Finish(); err != nil {
		return nil, nil, nil, fmt.Errorf("%w: LR request: %v", ErrProtocol, err)
	}
	return cols, caseFreq, refFreq, nil
}

// --- Result codec ---

func encodeResult(afterMAF, afterLD, safe []int) []byte {
	e := wire.NewEncoder(24 + 8*(len(afterMAF)+len(afterLD)+len(safe)))
	e.Ints(afterMAF)
	e.Ints(afterLD)
	e.Ints(safe)
	return e.Bytes()
}

func decodeResult(b []byte) (afterMAF, afterLD, safe []int, err error) {
	d := wire.NewDecoder(b)
	afterMAF = d.Ints()
	afterLD = d.Ints()
	safe = d.Ints()
	if err := d.Finish(); err != nil {
		return nil, nil, nil, fmt.Errorf("%w: result: %v", ErrProtocol, err)
	}
	return afterMAF, afterLD, safe, nil
}

// attestConn performs the mutual-attestation handshake over a raw
// connection and returns the encrypted channel. sendFirst breaks the
// symmetry: the leader offers first, members answer.
func attestConn(raw transport.Conn, authority *attest.Authority, enc *enclave.Enclave, sendFirst bool) (*transport.SecureConn, error) {
	return attestConnTimeout(raw, authority, enc, sendFirst, 0)
}

// attestConnTimeout is attestConn with a per-step deadline: each handshake
// send and receive must complete within timeout (zero waits forever), so a
// silent or stalled peer cannot wedge the attesting side.
func attestConnTimeout(raw transport.Conn, authority *attest.Authority, enc *enclave.Enclave, sendFirst bool, timeout time.Duration) (*transport.SecureConn, error) {
	return attestConnContext(nil, raw, authority, enc, sendFirst, timeout)
}

// attestConnContext is attestConnTimeout under a context: cancellation
// interrupts an in-flight handshake step. A nil or never-canceled context
// degrades to the plain deadline path.
func attestConnContext(ctx context.Context, raw transport.Conn, authority *attest.Authority, enc *enclave.Enclave, sendFirst bool, timeout time.Duration) (*transport.SecureConn, error) {
	hs, err := attest.NewHandshake(authority, enc)
	if err != nil {
		return nil, fmt.Errorf("federation: handshake: %w", err)
	}
	send := func() error {
		//gendpr:allow(secretflow): the attestation offer is public handshake material (ECDH public key, nonce, measurement) and must travel before the secure channel exists
		return transport.SendContext(ctx, raw, transport.Message{Kind: KindAttestOffer, Payload: encodeOffer(hs.Offer())}, timeout)
	}
	recv := func() (attest.Offer, error) {
		m, err := transport.RecvContext(ctx, raw, timeout)
		if err != nil {
			return attest.Offer{}, fmt.Errorf("federation: handshake recv: %w", err)
		}
		if m.Kind != KindAttestOffer {
			return attest.Offer{}, fmt.Errorf("%w: expected attestation offer, got kind %d", ErrProtocol, m.Kind)
		}
		return decodeOffer(m.Payload)
	}

	var peer attest.Offer
	if sendFirst {
		if err := send(); err != nil {
			return nil, err
		}
		if peer, err = recv(); err != nil {
			return nil, err
		}
	} else {
		if peer, err = recv(); err != nil {
			return nil, err
		}
		if err := send(); err != nil {
			return nil, err
		}
	}
	key, err := hs.Complete(authority.PublicKey(), peer, ExpectedMeasurement())
	if err != nil {
		return nil, fmt.Errorf("federation: attestation: %w", err)
	}
	return transport.NewSecure(raw, key), nil
}

// hashNonces derives a deterministic leader index from the members'
// committed nonces (random leader election, Section 5.2): every party
// computes the same SHA-256 over the ordered nonce list.
func hashNonces(nonces [][]byte, g int) int {
	h := sha256.New()
	for _, n := range nonces {
		h.Write(n)
	}
	sum := h.Sum(nil)
	v := uint64(sum[0])<<56 | uint64(sum[1])<<48 | uint64(sum[2])<<40 | uint64(sum[3])<<32 |
		uint64(sum[4])<<24 | uint64(sum[5])<<16 | uint64(sum[6])<<8 | uint64(sum[7])
	return int(v % uint64(g))
}

// ElectLeader picks the leader index from the members' random contributions.
// It returns an error when any contribution is empty or g is invalid.
func ElectLeader(nonces [][]byte, g int) (int, error) {
	if g <= 0 {
		return 0, fmt.Errorf("federation: federation size %d invalid", g)
	}
	if len(nonces) != g {
		return 0, fmt.Errorf("federation: %d nonces for %d members", len(nonces), g)
	}
	for i, n := range nonces {
		if len(n) == 0 {
			return 0, fmt.Errorf("federation: member %d contributed an empty nonce", i)
		}
	}
	return hashNonces(nonces, g), nil
}
