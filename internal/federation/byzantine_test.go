package federation

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gendpr/internal/core"
	"gendpr/internal/transport"
)

// The federation-level Byzantine suite drives semantic faults through the
// full wire stack — member-side perturbation under the AEAD channel, leader-
// side detection via plausibility checks and the digest ledger — and asserts
// the containment story end to end: the misbehaving member is quarantined
// with an attributing blame record, the survivors' selection is bit-identical
// to an honest run without the member, and an equivocator is never
// re-admitted while a crash-failed member rejoins cleanly.

// TestDigestSummaryMatchesCountsWire pins the alignment between the core
// audit digest and the federation wire encoding: core.DigestSummary must hash
// exactly the bytes a KindCountsReply carries, so the leader's ledger (raw
// payload hashes) and the runner's audit (value hashes) agree on what "the
// same answer" means.
func TestDigestSummaryMatchesCountsWire(t *testing.T) {
	counts := []int64{0, 3, 17, 120, 4}
	caseN := int64(120)
	wire := sha256.Sum256(encodeCounts(counts, caseN))
	audit := core.DigestSummary(counts, caseN)
	if wire != audit {
		t.Fatalf("DigestSummary diverged from the counts wire encoding:\n wire  %x\n audit %x", wire, audit)
	}
}

// eventLog collects RunOptions.OnEvent callbacks concurrency-safely.
type eventLog struct {
	mu     sync.Mutex
	events []MemberEvent
}

func (l *eventLog) record(e MemberEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// of returns the event names seen for one member, in order.
func (l *eventLog) of(member string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for _, e := range l.events {
		if e.Member == member {
			out = append(out, e.Event)
		}
	}
	return out
}

func (l *eventLog) count(member, event string) int {
	n := 0
	for _, e := range l.of(member) {
		if e == event {
			n++
		}
	}
	return n
}

// byzantinePrep wraps the first member the runner builds with a
// core.ByzantineProvider; the leader's own shard is never wrapped, mirroring
// the threat model where the coordinator's enclave is trusted.
type byzantinePrep struct {
	mode core.ByzantineMode
	n    int

	mu      sync.Mutex
	wrapped bool
	target  int
}

func (b *byzantinePrep) prep(shardIdx int, m *Member) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.wrapped {
		return
	}
	b.wrapped = true
	b.target = shardIdx
	m.WrapProvider(func(p core.Provider) core.Provider {
		return core.NewByzantineProvider(p, b.mode, b.n)
	})
}

func (b *byzantinePrep) shard() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.target
}

// runPreparedGuarded is runGuarded for the prepared-member entry point.
func runPreparedGuarded(t *testing.T, f *chaosFixture, policy core.CollusionPolicy, opts RunOptions, inject faultInjector, prep memberPrep) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := runInProcessPrepared(f.shards, f.cohort.Reference, core.DefaultConfig(), policy, opts, false, inject, prep)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(chaosWatchdog):
		t.Fatalf("prepared chaos run hung past the %v watchdog", chaosWatchdog)
		return nil, nil
	}
}

// TestFederationByzantineQuarantine perturbs one member's answers in each
// protocol phase and demands containment: the member is excluded with an
// invalid-payload blame record naming it and the phase, and the selection is
// bit-identical to an honest run over the survivors.
func TestFederationByzantineQuarantine(t *testing.T) {
	f := newChaosFixture(t)
	cases := []struct {
		name   string
		mode   core.ByzantineMode
		policy core.CollusionPolicy
		phase  string
	}{
		{"counts-overflow", core.ByzantineCountsOverflow, core.CollusionPolicy{}, core.PhaseSummary},
		{"pair-skew", core.ByzantinePairSkew, core.CollusionPolicy{}, core.PhaseLD},
		{"pattern-flip", core.ByzantinePatternFlip, core.CollusionPolicy{F: 1}, core.PhaseLR},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prep := &byzantinePrep{mode: tc.mode, n: 1}
			log := &eventLog{}
			res, err := runPreparedGuarded(t, f, tc.policy, RunOptions{
				RPCTimeout: chaosRPCTimeout,
				MaxRetries: 2,
				Backoff:    5 * time.Millisecond,
				MinQuorum:  2,
				Byzantine:  true,
				OnEvent:    log.record,
			}, nil, prep.prep)
			if err != nil {
				t.Fatalf("run did not contain the byzantine member: %v", err)
			}
			bad := prep.shard()
			badName := fmt.Sprintf("gdo-%d", bad)
			if len(res.Excluded) != 1 || res.Excluded[0] != bad {
				t.Fatalf("excluded %v, want exactly the byzantine shard %d", res.Excluded, bad)
			}
			if len(res.Rejoined) != 0 {
				t.Fatalf("byzantine member rejoined: %v", res.Rejoined)
			}
			blames := res.Report.Blamed
			if len(blames) == 0 {
				t.Fatal("no blame record for the byzantine member")
			}
			found := false
			for _, b := range blames {
				if b.Member == badName && b.Kind == core.BlameInvalidPayload && b.Phase == tc.phase {
					found = true
				}
			}
			if !found {
				t.Fatalf("blames %+v lack {%s, invalid-payload, %s}", blames, badName, tc.phase)
			}
			if got := log.count(badName, "byzantine"); got != 1 {
				t.Errorf("saw %d byzantine events for %s, want 1 (events: %v)", got, badName, log.of(badName))
			}
			want := f.baseline(t, bad, tc.policy)
			if !res.Report.Selection.Equal(want.Selection) {
				t.Errorf("contained selection %v != survivor baseline %v", res.Report.Selection, want.Selection)
			}
		})
	}
}

// TestFederationRetryEquivocation is the retry-equivocation story: the member
// answers its summary honestly, a transport fault forces a redial, and the
// post-reconnect ledger audit replays the summary query — which the member
// now answers differently. The leader must blame it for equivocation, exclude
// it, and refuse to re-admit it even though rejoin is enabled.
func TestFederationRetryEquivocation(t *testing.T) {
	f := newChaosFixture(t)
	prep := &byzantinePrep{mode: core.ByzantineEquivocate, n: 2}
	inj := &chaosInjector{point: transport.FaultPoint{
		Op:      transport.FaultSend,
		Kind:    transport.FaultClose,
		MsgKind: KindPairBatchRequest,
	}}
	log := &eventLog{}
	res, err := runPreparedGuarded(t, f, core.CollusionPolicy{}, RunOptions{
		RPCTimeout:  chaosRPCTimeout,
		MaxRetries:  2,
		Backoff:     5 * time.Millisecond,
		MinQuorum:   2,
		Byzantine:   true,
		AllowRejoin: true,
		OnEvent:     log.record,
	}, inj.inject, prep.prep)
	if err != nil {
		t.Fatalf("run did not contain the equivocator: %v", err)
	}
	if !inj.fired() {
		t.Fatal("transport fault never fired; no redial was forced")
	}
	bad := prep.shard()
	if inj.target != bad {
		t.Fatalf("fault hit shard %d but the equivocator is shard %d", inj.target, bad)
	}
	badName := fmt.Sprintf("gdo-%d", bad)
	if len(res.Excluded) != 1 || res.Excluded[0] != bad {
		t.Fatalf("excluded %v, want exactly the equivocating shard %d", res.Excluded, bad)
	}
	if len(res.Rejoined) != 0 {
		t.Fatalf("equivocator was re-admitted: rejoined %v", res.Rejoined)
	}
	var blame *core.Blame
	for i := range res.Report.Blamed {
		if res.Report.Blamed[i].Member == badName && res.Report.Blamed[i].Kind == core.BlameEquivocation {
			blame = &res.Report.Blamed[i]
		}
	}
	if blame == nil {
		t.Fatalf("blames %+v lack an equivocation record for %s", res.Report.Blamed, badName)
	}
	if len(blame.Prior) == 0 || len(blame.Observed) == 0 || bytes.Equal(blame.Prior, blame.Observed) {
		t.Fatalf("equivocation evidence must carry two distinct digests, got prior=%x observed=%x", blame.Prior, blame.Observed)
	}
	if got := log.count(badName, "rejoined"); got != 0 {
		t.Errorf("equivocator produced %d rejoined events (events: %v)", got, log.of(badName))
	}
	want := f.baseline(t, bad, core.CollusionPolicy{})
	if !res.Report.Selection.Equal(want.Selection) {
		t.Errorf("contained selection %v != survivor baseline %v", res.Report.Selection, want.Selection)
	}
}

// TestFederationRejoinAfterCrash excludes a member via an injected crash
// (retries disabled) and demands the full rejoin story: the member re-attests
// at the next phase boundary, passes the summary audit, rejoins, and the
// final selection is bit-identical to the undisturbed full-federation
// baseline with nobody left excluded.
func TestFederationRejoinAfterCrash(t *testing.T) {
	f := newChaosFixture(t)
	inj := &chaosInjector{point: transport.FaultPoint{
		Op:      transport.FaultSend,
		Kind:    transport.FaultClose,
		MsgKind: KindPairBatchRequest,
	}}
	log := &eventLog{}
	res, err := runGuarded(t, f, core.CollusionPolicy{}, RunOptions{
		RPCTimeout:  chaosRPCTimeout,
		MaxRetries:  0,
		MinQuorum:   2,
		Byzantine:   true,
		AllowRejoin: true,
		OnEvent:     log.record,
	}, inj.inject)
	if err != nil {
		t.Fatalf("run did not recover through rejoin: %v", err)
	}
	if !inj.fired() {
		t.Fatal("fault never fired; nobody crashed")
	}
	name := fmt.Sprintf("gdo-%d", inj.target)
	if len(res.Excluded) != 0 {
		t.Fatalf("rejoined member still excluded: %v", res.Excluded)
	}
	if len(res.Rejoined) != 1 || res.Rejoined[0] != inj.target {
		t.Fatalf("rejoined %v, want exactly the crashed shard %d", res.Rejoined, inj.target)
	}
	events := log.of(name)
	excludedAt, rejoinedAt := -1, -1
	for i, e := range events {
		if e == "excluded" && excludedAt < 0 {
			excludedAt = i
		}
		if e == "rejoined" && rejoinedAt < 0 {
			rejoinedAt = i
		}
	}
	if excludedAt < 0 || rejoinedAt < 0 || rejoinedAt < excludedAt {
		t.Errorf("events for %s = %v, want excluded before rejoined", name, events)
	}
	want := f.baseline(t, -1, core.CollusionPolicy{})
	if !res.Report.Selection.Equal(want.Selection) {
		t.Errorf("rejoined selection %v != full baseline %v", res.Report.Selection, want.Selection)
	}
}

// TestFederationTamperExcludesWithoutRetry corrupts one reply ciphertext in
// flight. The AEAD layer must reject the frame with an authentication error,
// and the leader must treat that as tampering: no retry (despite an unused
// retry budget), the member is declared failed and excluded, and the run
// degrades to the survivor baseline.
func TestFederationTamperExcludesWithoutRetry(t *testing.T) {
	f := newChaosFixture(t)
	inj := &chaosInjector{point: transport.FaultPoint{
		Op:      transport.FaultRecv,
		Kind:    transport.FaultCorrupt,
		MsgKind: KindPairBatchReply,
	}}
	log := &eventLog{}
	res, err := runGuarded(t, f, core.CollusionPolicy{}, RunOptions{
		RPCTimeout: chaosRPCTimeout,
		MaxRetries: 3,
		Backoff:    5 * time.Millisecond,
		MinQuorum:  2,
		OnEvent:    log.record,
	}, inj.inject)
	if err != nil {
		t.Fatalf("run did not degrade after tampering: %v", err)
	}
	if !inj.fired() {
		t.Fatal("corruption fault never fired")
	}
	name := fmt.Sprintf("gdo-%d", inj.target)
	if len(res.Excluded) != 1 || res.Excluded[0] != inj.target {
		t.Fatalf("excluded %v, want exactly the tampered shard %d", res.Excluded, inj.target)
	}
	if got := log.count(name, "retrying"); got != 0 {
		t.Errorf("tampered channel was retried %d times; tampering must not consume the retry budget (events: %v)", got, log.of(name))
	}
	want := f.baseline(t, inj.target, core.CollusionPolicy{})
	if !res.Report.Selection.Equal(want.Selection) {
		t.Errorf("degraded selection %v != survivor baseline %v", res.Report.Selection, want.Selection)
	}
}

// TestRejoinBarredWithoutRedial documents the rejoin preconditions: a member
// whose link has no redial path cannot rejoin, and the error says so rather
// than pretending the member is healthy.
func TestRejoinBarredWithoutRedial(t *testing.T) {
	r := &remoteProvider{name: "gdo-x"}
	if err := r.Rejoin(); err == nil {
		t.Fatal("Rejoin succeeded without a redial path")
	}
	r.health = HealthByzantine
	err := r.Rejoin()
	if err == nil {
		t.Fatal("quarantined member rejoined")
	}
	if !errors.Is(err, core.ErrEquivocation) {
		t.Fatalf("quarantined rejoin error %v does not wrap ErrEquivocation", err)
	}
}
