package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gendpr/internal/checkpoint"
	"gendpr/internal/core"
	"gendpr/internal/genome"
	"gendpr/internal/transport"
)

// The chaos harness sweeps deterministic fault points across all three
// protocol phases and asserts the two acceptable outcomes of the
// fault-tolerant runtime:
//
//   - rescue: with retries and redial enabled, the run completes with a
//     selection bit-identical to the undisturbed baseline and no exclusions;
//   - degrade: with retries disabled and a quorum configured, the run
//     completes with exactly the faulted member excluded and a selection
//     bit-identical to a run over the survivors.
//
// Never a hang (every case runs under a watchdog) and never a silent wrong
// answer (every case compares selections against an independent baseline).

const (
	chaosRPCTimeout = 500 * time.Millisecond
	chaosDelay      = 3 * chaosRPCTimeout
	chaosWatchdog   = 60 * time.Second
)

// chaosInjector wraps the first member connection spawned by the in-process
// runner with a transport.Fault; every later spawn — including redials of the
// same member — passes through untouched, so the fault fires exactly once.
type chaosInjector struct {
	point transport.FaultPoint

	mu     sync.Mutex
	target int
	fault  *transport.Fault
}

func (c *chaosInjector) inject(shardIdx int, conn transport.Conn) transport.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fault != nil {
		return conn
	}
	c.target = shardIdx
	c.fault = transport.NewFault(conn, c.point)
	return c.fault
}

func (c *chaosInjector) fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fault != nil && c.fault.Fired()
}

// chaosFixture holds the shared cohort plus memoized baselines so the sweep
// pays for each reference assessment once.
type chaosFixture struct {
	cohort *genome.Cohort
	shards []*genome.Matrix

	mu        sync.Mutex
	baselines map[string]*core.Report
}

func newChaosFixture(t *testing.T) *chaosFixture {
	t.Helper()
	cohort := testCohort(t, 36, 48, 53)
	shards, err := cohort.Partition(3)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	return &chaosFixture{cohort: cohort, shards: shards, baselines: map[string]*core.Report{}}
}

// baseline returns the distributed reference run with shard `excluded`
// removed (-1 keeps the full federation), memoized per exclusion and policy.
func (f *chaosFixture) baseline(t *testing.T, excluded int, policy core.CollusionPolicy) *core.Report {
	t.Helper()
	key := fmt.Sprintf("%d/F%d/c%v", excluded, policy.F, policy.Conservative)
	f.mu.Lock()
	defer f.mu.Unlock()
	if r, ok := f.baselines[key]; ok {
		return r
	}
	shards := make([]*genome.Matrix, 0, len(f.shards))
	for i, s := range f.shards {
		if i != excluded {
			shards = append(shards, s)
		}
	}
	r, err := core.RunDistributed(shards, f.cohort.Reference, core.DefaultConfig(), policy)
	if err != nil {
		t.Fatalf("baseline (excluded=%d): %v", excluded, err)
	}
	f.baselines[key] = r
	return r
}

// runGuarded executes one federated run under a watchdog: a hang is a test
// failure, never a stuck suite.
func runGuarded(t *testing.T, f *chaosFixture, policy core.CollusionPolicy, opts RunOptions, inject faultInjector) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := runInProcessInjected(f.shards, f.cohort.Reference, core.DefaultConfig(), policy, opts, false, inject)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(chaosWatchdog):
		t.Fatalf("chaos run hung past the %v watchdog", chaosWatchdog)
		return nil, nil
	}
}

// chaosPoints enumerates one fault point per phase and direction. Delay
// points carry the sleep that must trip the RPC deadline.
func chaosPoints(short bool) []transport.FaultPoint {
	send := func(kind uint16, fk transport.FaultKind) transport.FaultPoint {
		return transport.FaultPoint{Op: transport.FaultSend, Kind: fk, MsgKind: kind, Delay: chaosDelay}
	}
	recv := func(kind uint16, fk transport.FaultKind) transport.FaultPoint {
		return transport.FaultPoint{Op: transport.FaultRecv, Kind: fk, MsgKind: kind, Delay: chaosDelay}
	}
	if short {
		// The smoke subset: one teardown and one lossy point per direction,
		// touching Phase 1 and Phase 3.
		return []transport.FaultPoint{
			send(KindCountsRequest, transport.FaultClose),
			send(KindLRRequest, transport.FaultDrop),
			recv(KindCountsReply, transport.FaultDrop),
			recv(KindLRReply, transport.FaultClose),
		}
	}
	var points []transport.FaultPoint
	for _, fk := range []transport.FaultKind{transport.FaultError, transport.FaultClose, transport.FaultDrop} {
		points = append(points,
			send(KindCountsRequest, fk),
			send(KindPairBatchRequest, fk),
			send(KindLRRequest, fk),
			recv(KindCountsReply, fk),
			recv(KindPairBatchReply, fk),
			recv(KindLRReply, fk),
		)
	}
	// Delay faults sleep for real, so cover one per direction instead of the
	// full matrix: a slow request send and a late Phase 3 reply.
	points = append(points,
		send(KindCountsRequest, transport.FaultDelay),
		recv(KindLRReply, transport.FaultDelay),
	)
	return points
}

// TestChaosRescue sweeps every fault point with retries and redial enabled:
// the run must recover — same selection as the undisturbed baseline, nobody
// excluded.
func TestChaosRescue(t *testing.T) {
	f := newChaosFixture(t)
	policies := []core.CollusionPolicy{{}}
	if !testing.Short() {
		policies = append(policies, core.CollusionPolicy{F: 1})
	}
	for _, policy := range policies {
		for _, point := range chaosPoints(testing.Short()) {
			name := fmt.Sprintf("F%d/%s", policy.F, point)
			t.Run(name, func(t *testing.T) {
				inj := &chaosInjector{point: point}
				res, err := runGuarded(t, f, policy, RunOptions{
					RPCTimeout: chaosRPCTimeout,
					MaxRetries: 3,
					Backoff:    5 * time.Millisecond,
				}, inj.inject)
				if err != nil {
					t.Fatalf("run did not recover: %v", err)
				}
				if !inj.fired() {
					t.Fatal("fault never fired; the case exercised nothing")
				}
				if len(res.Excluded) != 0 {
					t.Fatalf("recovered run excluded members: %v", res.Excluded)
				}
				want := f.baseline(t, -1, policy)
				if !res.Report.Selection.Equal(want.Selection) {
					t.Errorf("selection %v != baseline %v", res.Report.Selection, want.Selection)
				}
			})
		}
	}
}

// TestChaosDegrade sweeps the same fault points with retries disabled and a
// two-provider quorum: the faulted member must be excluded, everyone else
// finishes, and the selection equals a run over the survivors.
func TestChaosDegrade(t *testing.T) {
	f := newChaosFixture(t)
	policies := []core.CollusionPolicy{{}}
	if !testing.Short() {
		policies = append(policies, core.CollusionPolicy{F: 1})
	}
	for _, policy := range policies {
		for _, point := range chaosPoints(testing.Short()) {
			name := fmt.Sprintf("F%d/%s", policy.F, point)
			t.Run(name, func(t *testing.T) {
				inj := &chaosInjector{point: point}
				res, err := runGuarded(t, f, policy, RunOptions{
					RPCTimeout: chaosRPCTimeout,
					MaxRetries: 0,
					MinQuorum:  2,
				}, inj.inject)
				if err != nil {
					t.Fatalf("run did not degrade: %v", err)
				}
				if !inj.fired() {
					t.Fatal("fault never fired; the case exercised nothing")
				}
				if len(res.Excluded) != 1 || res.Excluded[0] != inj.target {
					t.Fatalf("excluded %v, want exactly the faulted shard %d", res.Excluded, inj.target)
				}
				want := f.baseline(t, inj.target, policy)
				if !res.Report.Selection.Equal(want.Selection) {
					t.Errorf("degraded selection %v != survivor baseline %v", res.Report.Selection, want.Selection)
				}
			})
		}
	}
}

// killStore kills the leader at its killAt-th checkpoint save (1 = after
// Phase 1, 2 = after Phase 2, 2+c = after the c-th Phase 3 combination) by
// canceling the leader's run context. With before set the crash lands before
// the snapshot reaches storage, so the successor finds only the previous
// boundary — or nothing at all for killAt 1.
type killStore struct {
	inner  checkpoint.Store
	cancel context.CancelFunc
	killAt int
	before bool

	mu      sync.Mutex
	ordinal int
}

func (k *killStore) Save(st *checkpoint.State) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.ordinal++
	if k.ordinal == k.killAt {
		k.cancel()
		if k.before {
			return context.Canceled
		}
	}
	return k.inner.Save(st)
}

func (k *killStore) Load() (*checkpoint.State, error) { return k.inner.Load() }
func (k *killStore) Clear() error                     { return k.inner.Clear() }

// runFailoverGuarded executes one failover run under the watchdog.
func runFailoverGuarded(t *testing.T, f *chaosFixture, policy core.CollusionPolicy, opts RunOptions, hook failoverHook) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := runInProcessFailover(context.Background(), f.shards, f.cohort.Reference, core.DefaultConfig(), policy, opts, hook)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(chaosWatchdog):
		t.Fatalf("failover run hung past the %v watchdog", chaosWatchdog)
		return nil, nil
	}
}

// TestChaosLeaderFailover kills the first elected leader at every checkpoint
// boundary in turn and demands the full recovery story: the survivors elect a
// new leader, the new leader resumes from the latest durable snapshot, nobody
// is excluded, and the final selection is bit-identical to the undisturbed
// baseline.
func TestChaosLeaderFailover(t *testing.T) {
	f := newChaosFixture(t)
	type killCase struct {
		policy core.CollusionPolicy
		killAt int
		before bool
		// resumed is whether the successor should find a usable snapshot: a
		// crash during the very first save leaves nothing durable, so that
		// rerun is fresh rather than resumed.
		resumed bool
	}
	cases := []killCase{
		{core.CollusionPolicy{}, 1, true, false}, // dies mid-Phase-1 save
		{core.CollusionPolicy{}, 1, false, true}, // dies right after Phase 1
		{core.CollusionPolicy{}, 2, false, true}, // dies right after Phase 2
		{core.CollusionPolicy{}, 3, false, true}, // dies after the last combination
	}
	if !testing.Short() {
		// With F=1 over 3 shards Phase 3 evaluates 4 combinations, so the
		// save ordinals run 1 (MAF), 2 (LD), 3..6 (combinations).
		cases = append(cases,
			killCase{core.CollusionPolicy{F: 1}, 2, false, true},
			killCase{core.CollusionPolicy{F: 1}, 4, false, true},
			killCase{core.CollusionPolicy{F: 1}, 6, false, true},
		)
	}
	for _, tc := range cases {
		name := fmt.Sprintf("F%d/save%d/before=%v", tc.policy.F, tc.killAt, tc.before)
		t.Run(name, func(t *testing.T) {
			var (
				mu       sync.Mutex
				killed   = -1
				attempts int
			)
			hook := func(attempt, leaderIdx int, cancel context.CancelFunc, store checkpoint.Store) checkpoint.Store {
				mu.Lock()
				defer mu.Unlock()
				attempts++
				if attempt == 0 {
					killed = leaderIdx
					return &killStore{inner: store, cancel: cancel, killAt: tc.killAt, before: tc.before}
				}
				return store
			}
			res, err := runFailoverGuarded(t, f, tc.policy, RunOptions{
				RPCTimeout: chaosRPCTimeout,
				MaxRetries: 1,
				Backoff:    5 * time.Millisecond,
			}, hook)
			if err != nil {
				t.Fatalf("failover run failed: %v", err)
			}
			mu.Lock()
			gotKilled, gotAttempts := killed, attempts
			mu.Unlock()
			if gotAttempts != 2 {
				t.Fatalf("ran %d attempts, want exactly 2 (kill + resume)", gotAttempts)
			}
			if len(res.FormerLeaders) != 1 || res.FormerLeaders[0] != gotKilled {
				t.Fatalf("FormerLeaders = %v, want [%d]", res.FormerLeaders, gotKilled)
			}
			if res.LeaderIndex == gotKilled {
				t.Fatalf("dead leader %d was re-elected", gotKilled)
			}
			if res.Report.Resumed != tc.resumed {
				t.Errorf("Resumed = %v, want %v", res.Report.Resumed, tc.resumed)
			}
			if len(res.Excluded) != 0 {
				t.Fatalf("failover excluded members: %v", res.Excluded)
			}
			want := f.baseline(t, -1, tc.policy)
			if !res.Report.Selection.Equal(want.Selection) {
				t.Errorf("failover selection %v != baseline %v", res.Report.Selection, want.Selection)
			}
			if res.Report.Selection.Power != want.Selection.Power {
				t.Errorf("failover power %v != baseline %v", res.Report.Selection.Power, want.Selection.Power)
			}
		})
	}
}

// TestChaosQuorumLoss drops the quorum floor out from under a faulted run:
// with MinQuorum equal to the full federation, any member failure must abort
// with ErrQuorumLost rather than degrade or hang.
func TestChaosQuorumLoss(t *testing.T) {
	f := newChaosFixture(t)
	inj := &chaosInjector{point: transport.FaultPoint{
		Op:      transport.FaultSend,
		Kind:    transport.FaultClose,
		MsgKind: KindPairBatchRequest,
	}}
	_, err := runGuarded(t, f, core.CollusionPolicy{}, RunOptions{
		RPCTimeout: chaosRPCTimeout,
		MaxRetries: 0,
		MinQuorum:  3,
	}, inj.inject)
	if err == nil {
		t.Fatal("run completed despite quorum loss")
	}
	if !errors.Is(err, core.ErrQuorumLost) {
		t.Fatalf("error %v does not wrap ErrQuorumLost", err)
	}
}
