package gendpr_test

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCLIs compiles every command into a temporary directory once per test
// run and returns the directory.
func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test builds binaries")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	return dir
}

func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestCLIEndToEnd drives the whole toolchain: dataset generation, an
// in-process federation run with a signed release, release verification,
// and a real multi-process deployment over TCP.
func TestCLIEndToEnd(t *testing.T) {
	bins := buildCLIs(t)
	data := t.TempDir()

	// 1. Generate a pre-sharded signed dataset.
	out := runCLI(t, filepath.Join(bins, "genomegen"),
		"-snps", "200", "-case", "240", "-out", data, "-shards", "3", "-sign=false")
	for _, want := range []string{"case.vcf", "reference.vcf", "shard-2.vcf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("genomegen output missing %q:\n%s", want, out)
		}
	}

	// 2. Single-process federation with a signed release.
	releasePath := filepath.Join(data, "release.json")
	out = runCLI(t, filepath.Join(bins, "gendpr"),
		"-case", filepath.Join(data, "case.vcf"),
		"-reference", filepath.Join(data, "reference.vcf"),
		"-gdos", "3", "-f", "1",
		"-release", releasePath, "-study", "cli-test")
	if !strings.Contains(out, "selection: MAF") {
		t.Fatalf("gendpr output missing selection:\n%s", out)
	}
	if !strings.Contains(out, "combinations evaluated: 4") {
		t.Fatalf("gendpr output missing collusion combinations:\n%s", out)
	}

	// 3. Verify the release.
	out = runCLI(t, filepath.Join(bins, "gendpr-verify"),
		"-release", releasePath, "-key", releasePath+".pub", "-top", "2")
	if !strings.Contains(out, "signature: OK") {
		t.Fatalf("gendpr-verify did not accept the release:\n%s", out)
	}
	if !strings.Contains(out, `study "cli-test"`) {
		t.Fatalf("gendpr-verify lost the study id:\n%s", out)
	}

	// 4. Tampered releases must fail verification.
	raw, err := os.ReadFile(releasePath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"studyId": "cli-test"`, `"studyId": "evil"`, 1)
	if tampered == string(raw) {
		t.Fatal("tampering substitution failed")
	}
	tamperedPath := filepath.Join(data, "tampered.json")
	if err := os.WriteFile(tamperedPath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(bins, "gendpr-verify"),
		"-release", tamperedPath, "-key", releasePath+".pub")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("gendpr-verify accepted a tampered release:\n%s", out)
	}

	// 5. Multi-process deployment: authority seed + two nodes + leader.
	seedPath := filepath.Join(data, "authority.seed")
	runCLI(t, filepath.Join(bins, "gendpr-authority"), "-out", seedPath)

	type nodeProc struct {
		cmd  *exec.Cmd
		addr string
	}
	var nodes []nodeProc
	for i := 0; i < 2; i++ {
		cmd := exec.Command(filepath.Join(bins, "gendpr-node"),
			"-listen", "127.0.0.1:0", // ephemeral: no port collisions across runs
			"-case", filepath.Join(data, "shard-"+string(rune('1'+i))+".vcf"),
			"-authority", seedPath,
			"-id", "gdo-"+string(rune('1'+i)))
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		// The node announces its bound address on the first stdout line.
		scanner := bufio.NewScanner(stdout)
		if !scanner.Scan() {
			t.Fatalf("node %d produced no output", i)
		}
		line := scanner.Text()
		idx := strings.LastIndex(line, "listening on ")
		if idx < 0 {
			t.Fatalf("node %d banner %q missing address", i, line)
		}
		addr := strings.TrimSpace(line[idx+len("listening on "):])
		go func() { // drain remaining output so the node never blocks
			for scanner.Scan() {
			}
		}()
		nodes = append(nodes, nodeProc{cmd: cmd, addr: addr})
	}
	defer func() {
		for _, n := range nodes {
			_ = n.cmd.Process.Kill()
			_, _ = n.cmd.Process.Wait()
		}
	}()

	// The leader retries are handled by TCP connect; give the nodes a
	// moment to bind by retrying the leader a few times.
	leaderBin := filepath.Join(bins, "gendpr-leader")
	leaderArgs := []string{
		"-members", nodes[0].addr + "," + nodes[1].addr,
		"-case", filepath.Join(data, "shard-0.vcf"),
		"-reference", filepath.Join(data, "reference.vcf"),
		"-authority", seedPath,
	}
	var leaderOut []byte
	var err2 error
	for attempt := 0; attempt < 50; attempt++ {
		leaderOut, err2 = exec.Command(leaderBin, leaderArgs...).CombinedOutput()
		if err2 == nil {
			break
		}
		if !strings.Contains(string(leaderOut), "connection refused") {
			t.Fatalf("gendpr-leader: %v\n%s", err2, leaderOut)
		}
		time.Sleep(100 * time.Millisecond) // nodes still binding
	}
	err = err2
	if err != nil {
		t.Fatalf("gendpr-leader never connected: %v\n%s", err, leaderOut)
	}
	if !strings.Contains(string(leaderOut), "selection: MAF") {
		t.Fatalf("leader output missing selection:\n%s", leaderOut)
	}
	for _, n := range nodes {
		if err := n.cmd.Wait(); err != nil {
			t.Errorf("node %s exited with %v", n.addr, err)
		}
	}
}

// TestCLIExperimentsSmoke exercises the experiments tool on its smallest
// configuration.
func TestCLIExperimentsSmoke(t *testing.T) {
	bins := buildCLIs(t)
	out := runCLI(t, filepath.Join(bins, "experiments"),
		"-only", "table4", "-scale", "0.01", "-gdos", "2")
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "GenDPR") {
		t.Fatalf("experiments output unexpected:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("experiments reported a selection mismatch:\n%s", out)
	}
}
