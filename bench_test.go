// Benchmarks regenerating every table and figure of the paper's evaluation.
//
// One benchmark per experiment:
//
//	BenchmarkTable3Resources  — Table 3 (CPU / enclave memory per config)
//	BenchmarkFig5a/Fig5b      — Figures 5a, 5b (running time, 1,000 SNPs)
//	BenchmarkFig6a/Fig6b      — Figures 6a, 6b (running time, 10,000 SNPs)
//	BenchmarkTable4Selection  — Table 4 (selection correctness funnel)
//	BenchmarkTable5Collusion  — Table 5 (collusion-tolerant GenDPR)
//
// plus ablations for the design choices DESIGN.md calls out. Genome counts
// are scaled by GENDPR_BENCH_SCALE (default 0.05) so the full suite stays in
// benchmark-friendly territory; the trends the paper reports are preserved
// at every scale and cmd/experiments reproduces the tables at any scale up
// to the paper's own (-scale 1).
package gendpr_test

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"gendpr/internal/bench"
	"gendpr/internal/core"
	"gendpr/internal/genome"
	"gendpr/internal/lrtest"
	"gendpr/internal/seal"
	"gendpr/internal/stats"
	"gendpr/internal/transport"
)

func benchScale() float64 {
	if s := os.Getenv("GENDPR_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

// reportPhases attaches the figure's per-phase breakdown as custom metrics.
func reportPhases(b *testing.B, t core.Timings, runs int) {
	if runs == 0 {
		return
	}
	div := float64(runs)
	b.ReportMetric(float64(t.DataAggregation.Microseconds())/1000/div, "ms-aggregation/op")
	b.ReportMetric(float64(t.Indexing.Microseconds())/1000/div, "ms-indexing/op")
	b.ReportMetric(float64(t.LD.Microseconds())/1000/div, "ms-ld/op")
	b.ReportMetric(float64(t.LRTest.Microseconds())/1000/div, "ms-lrtest/op")
}

// benchFigure runs one running-time figure: sub-benchmarks for the
// centralized baseline and each federation size.
func benchFigure(b *testing.B, w bench.Workload) {
	if _, err := bench.Cohort(w); err != nil { // warm the cohort cache
		b.Fatal(err)
	}
	b.Run("Centralized", func(b *testing.B) {
		var agg core.Timings
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := bench.RunCentralized(w)
			if err != nil {
				b.Fatal(err)
			}
			agg = agg.Add(rep.Timings)
		}
		reportPhases(b, agg, b.N)
	})
	for _, g := range bench.GDOGrid {
		b.Run(fmt.Sprintf("%dGDOs", g), func(b *testing.B) {
			var agg core.Timings
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := bench.RunGenDPR(w, g, core.CollusionPolicy{})
				if err != nil {
					b.Fatal(err)
				}
				agg = agg.Add(rep.Timings)
			}
			reportPhases(b, agg, b.N)
		})
	}
}

func BenchmarkFig5a(b *testing.B) {
	benchFigure(b, bench.Workload{SNPs: 1000, Genomes: 7430, Scale: benchScale()})
}

func BenchmarkFig5b(b *testing.B) {
	benchFigure(b, bench.Workload{SNPs: 1000, Genomes: 14860, Scale: benchScale()})
}

func BenchmarkFig6a(b *testing.B) {
	benchFigure(b, bench.Workload{SNPs: 10000, Genomes: 7430, Scale: benchScale()})
}

func BenchmarkFig6b(b *testing.B) {
	benchFigure(b, bench.Workload{SNPs: 10000, Genomes: 14860, Scale: benchScale()})
}

// BenchmarkTable3Resources regenerates the resource-utilization table:
// enclave peak memory is reported as a custom metric per configuration.
func BenchmarkTable3Resources(b *testing.B) {
	scale := benchScale()
	for _, g := range []int{2, 3, 5, 7} {
		for _, snps := range []int{1000, 10000} {
			w := bench.Workload{SNPs: snps, Genomes: 14860, Scale: scale}
			b.Run(fmt.Sprintf("%dGDOs_%dSNPs", g, snps), func(b *testing.B) {
				b.ReportAllocs()
				var peak int64
				for i := 0; i < b.N; i++ {
					rep, err := bench.RunGenDPR(w, g, core.CollusionPolicy{})
					if err != nil {
						b.Fatal(err)
					}
					peak = rep.PeakEnclaveBytes
				}
				b.ReportMetric(float64(peak)/1024, "enclave-KB")
			})
		}
	}
}

// BenchmarkTable4Selection regenerates the correctness comparison and fails
// the benchmark when GenDPR's selection deviates from the centralized one.
func BenchmarkTable4Selection(b *testing.B) {
	scale := benchScale()
	for _, w := range bench.Table4Workloads(scale) {
		w := w
		b.Run(fmt.Sprintf("%dgenomes_%dSNPs", w.Genomes, w.SNPs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				central, err := bench.RunCentralized(w)
				if err != nil {
					b.Fatal(err)
				}
				dist, err := bench.RunGenDPR(w, 3, core.CollusionPolicy{})
				if err != nil {
					b.Fatal(err)
				}
				if !dist.Selection.Equal(central.Selection) {
					b.Fatalf("GenDPR %v != centralized %v", dist.Selection, central.Selection)
				}
				naive, err := bench.RunNaive(w, 3)
				if err != nil {
					b.Fatal(err)
				}
				maf, ld, lr := dist.Selection.Counts()
				nmaf, nld, nlr := naive.Selection.Counts()
				b.ReportMetric(float64(maf), "maf-snps")
				b.ReportMetric(float64(ld), "ld-snps")
				b.ReportMetric(float64(lr), "lr-snps")
				b.ReportMetric(float64(nmaf), "naive-maf-snps")
				b.ReportMetric(float64(nld), "naive-ld-snps")
				b.ReportMetric(float64(nlr), "naive-lr-snps")
			}
		})
	}
}

// BenchmarkTable5Collusion regenerates the collusion-tolerance table for
// G in {3,4,5} with every fixed f and the conservative mode.
func BenchmarkTable5Collusion(b *testing.B) {
	scale := benchScale()
	w := bench.Workload{SNPs: 10000, Genomes: 14860, Scale: scale}
	base, err := bench.RunGenDPR(w, 3, core.CollusionPolicy{})
	if err != nil {
		b.Fatal(err)
	}
	_ = base
	for _, g := range []int{3, 4, 5} {
		policies := []struct {
			label  string
			policy core.CollusionPolicy
		}{}
		for f := 1; f < g; f++ {
			policies = append(policies, struct {
				label  string
				policy core.CollusionPolicy
			}{fmt.Sprintf("f%d", f), core.CollusionPolicy{F: f}})
		}
		policies = append(policies, struct {
			label  string
			policy core.CollusionPolicy
		}{"fAll", core.CollusionPolicy{Conservative: true}})

		for _, p := range policies {
			p := p
			b.Run(fmt.Sprintf("G%d_%s", g, p.label), func(b *testing.B) {
				b.ReportAllocs()
				var safe, combos int
				var lrPeak int64
				for i := 0; i < b.N; i++ {
					rep, err := bench.RunGenDPR(w, g, p.policy)
					if err != nil {
						b.Fatal(err)
					}
					safe = len(rep.Selection.Safe)
					combos = rep.Combinations
					lrPeak = rep.PeakLRMatrixBytes
				}
				b.ReportMetric(float64(safe), "safe-snps")
				b.ReportMetric(float64(combos), "combinations")
				b.ReportMetric(float64(lrPeak), "lr-matrix-bytes")
			})
		}
	}

	// The G=10 tiers exist because of the combination lattice: conservative
	// mode evaluates 2^10−1 subsets, far past what the per-combination path
	// could sustain. They run with parallel combinations, the intended
	// deployment mode at this federation size.
	parCfg := core.DefaultConfig()
	parCfg.ParallelCombinations = true
	for _, p := range []struct {
		label  string
		policy core.CollusionPolicy
	}{
		{"f1", core.CollusionPolicy{F: 1}},
		{"fAll", core.CollusionPolicy{Conservative: true}},
	} {
		p := p
		b.Run(fmt.Sprintf("G10_%s", p.label), func(b *testing.B) {
			b.ReportAllocs()
			var safe, combos int
			var lrPeak int64
			for i := 0; i < b.N; i++ {
				rep, err := bench.RunGenDPRConfig(w, 10, p.policy, parCfg)
				if err != nil {
					b.Fatal(err)
				}
				safe = len(rep.Selection.Safe)
				combos = rep.Combinations
				lrPeak = rep.PeakLRMatrixBytes
			}
			b.ReportMetric(float64(safe), "safe-snps")
			b.ReportMetric(float64(combos), "combinations")
			b.ReportMetric(float64(lrPeak), "lr-matrix-bytes")
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationChiSquare compares the paper's simplified association
// statistic with the standard Pearson 2x2 form for the ranking pass.
func BenchmarkAblationChiSquare(b *testing.B) {
	w := bench.Workload{SNPs: 10000, Genomes: 14860, Scale: benchScale()}
	cohort, err := bench.Cohort(w)
	if err != nil {
		b.Fatal(err)
	}
	caseCounts := cohort.Case.AlleleCounts()
	refCounts := cohort.Reference.AlleleCounts()
	caseN, refN := int64(cohort.Case.N()), int64(cohort.Reference.N())
	for _, form := range []struct {
		name  string
		paper bool
	}{{"PaperForm", true}, {"Pearson2x2", false}} {
		b.Run(form.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.AssociationPValues(caseCounts, caseN, refCounts, refN, form.paper); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLDFullPairwise contrasts the protocol's greedy
// adjacent-pair LD scan (linear in |L'|) with exhaustive pairwise pruning
// (quadratic), the alternative the paper's (L')^2 bound alludes to.
func BenchmarkAblationLDFullPairwise(b *testing.B) {
	w := bench.Workload{SNPs: 1000, Genomes: 7430, Scale: benchScale()}
	cohort, err := bench.Cohort(w)
	if err != nil {
		b.Fatal(err)
	}
	caseCounts := cohort.Case.AlleleCounts()
	refCounts := cohort.Reference.AlleleCounts()
	caseN, refN := int64(cohort.Case.N()), int64(cohort.Reference.N())
	cfg := core.DefaultConfig()
	lPrime, err := core.MAFPhase(caseCounts, caseN, refCounts, refN, cfg.MAFCutoff)
	if err != nil {
		b.Fatal(err)
	}
	pvals, err := core.AssociationPValues(caseCounts, caseN, refCounts, refN, true)
	if err != nil {
		b.Fatal(err)
	}
	pool := func(x, y int) (genome.PairStats, error) {
		return cohort.Case.PairStats(x, y).Add(cohort.Reference.PairStats(x, y)), nil
	}

	b.Run("GreedyAdjacent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.LDPhase(lPrime, pool, pvals, cfg.LDCutoff); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FullPairwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fullPairwiseLD(lPrime, pool, pvals, cfg.LDCutoff); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// fullPairwiseLD removes, for every dependent pair, the lower-ranked SNP —
// over all O(n^2) pairs.
func fullPairwiseLD(retained []int, pool core.PairStatsFunc, pvals []float64, cutoff float64) ([]int, error) {
	alive := make(map[int]bool, len(retained))
	for _, l := range retained {
		alive[l] = true
	}
	for i := 0; i < len(retained); i++ {
		if !alive[retained[i]] {
			continue
		}
		for j := i + 1; j < len(retained); j++ {
			if !alive[retained[i]] {
				break
			}
			if !alive[retained[j]] {
				continue
			}
			ps, err := pool(retained[i], retained[j])
			if err != nil {
				return nil, err
			}
			p, err := stats.LDPValue(ps)
			if errors.Is(err, stats.ErrDegeneratePair) {
				p, err = 1, nil
			}
			if err != nil {
				return nil, err
			}
			if p < cutoff {
				if pvals[retained[i]] <= pvals[retained[j]] {
					alive[retained[j]] = false
				} else {
					alive[retained[i]] = false
				}
			}
		}
	}
	out := make([]int, 0, len(alive))
	for _, l := range retained {
		if alive[l] {
			out = append(out, l)
		}
	}
	return out, nil
}

// BenchmarkAblationObliviousLRTest measures the cost of the side-channel-
// hardened LR-test (bitonic sorting networks and branchless counting) versus
// the direct implementation; the selection output is identical.
func BenchmarkAblationObliviousLRTest(b *testing.B) {
	w := bench.Workload{SNPs: 1000, Genomes: 7430, Scale: benchScale()}
	cohort, err := bench.Cohort(w)
	if err != nil {
		b.Fatal(err)
	}
	shards, err := cohort.Partition(3)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name      string
		oblivious bool
	}{{"Direct", false}, {"Oblivious", true}} {
		cfg := core.DefaultConfig()
		cfg.LR.Oblivious = mode.oblivious
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunDistributed(shards, cohort.Reference, cfg, core.CollusionPolicy{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLRWireFormat compares the dense float64 LR-matrix wire
// encoding against the two-values-per-column compact form the federation
// transmits.
func BenchmarkAblationLRWireFormat(b *testing.B) {
	w := bench.Workload{SNPs: 1000, Genomes: 7430, Scale: benchScale()}
	cohort, err := bench.Cohort(w)
	if err != nil {
		b.Fatal(err)
	}
	caseFreq := genome.Frequencies(cohort.Case.AlleleCounts(), int64(cohort.Case.N()))
	refFreq := genome.Frequencies(cohort.Reference.AlleleCounts(), int64(cohort.Reference.N()))
	ratios, err := lrtest.NewLogRatios(caseFreq, refFreq)
	if err != nil {
		b.Fatal(err)
	}
	m, err := lrtest.Build(cohort.Case, ratios)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Dense", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			n = len(m.Bytes())
		}
		b.ReportMetric(float64(n), "wire-bytes")
	})
	b.Run("Compact", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			wireBytes, err := m.CompactBytes()
			if err != nil {
				b.Fatal(err)
			}
			n = len(wireBytes)
		}
		b.ReportMetric(float64(n), "wire-bytes")
	})
}

// BenchmarkAblationCollusionParallel measures the paper's Section 5.6
// observation that the per-combination evaluations can run in parallel
// inside the leader enclave: sequential vs concurrent combination loops for
// the conservative G=4 policy.
func BenchmarkAblationCollusionParallel(b *testing.B) {
	w := bench.Workload{SNPs: 1000, Genomes: 14860, Scale: benchScale()}
	cohort, err := bench.Cohort(w)
	if err != nil {
		b.Fatal(err)
	}
	shards, err := cohort.Partition(4)
	if err != nil {
		b.Fatal(err)
	}
	policy := core.CollusionPolicy{Conservative: true}
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"Sequential", false}, {"Parallel", true}} {
		cfg := core.DefaultConfig()
		cfg.ParallelCombinations = mode.parallel
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunDistributed(shards, cohort.Reference, cfg, policy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEncryption measures the AES-256-GCM transport wrapper's
// overhead against plaintext framing for LR-matrix-sized payloads.
func BenchmarkAblationEncryption(b *testing.B) {
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	run := func(b *testing.B, conn transport.Conn, peer transport.Conn) {
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		errCh := make(chan error, 1)
		go func() {
			defer close(errCh)
			for i := 0; i < b.N; i++ {
				if _, err := peer.Recv(); err != nil {
					errCh <- err
					return
				}
			}
		}()
		for i := 0; i < b.N; i++ {
			if err := conn.Send(transport.Message{Kind: 1, Payload: payload}); err != nil {
				b.Fatal(err)
			}
		}
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Plaintext", func(b *testing.B) {
		a, p := transport.Pipe()
		defer a.Close()
		run(b, a, p)
	})
	b.Run("AES256GCM", func(b *testing.B) {
		key, err := seal.NewKey()
		if err != nil {
			b.Fatal(err)
		}
		a, p := transport.Pipe()
		defer a.Close()
		run(b, transport.NewSecure(a, key), transport.NewSecure(p, key))
	})
}

// BenchmarkAblationBitset compares the bitset genotype matrix against a
// naive byte-per-genotype representation for the Phase 1 counting pass.
func BenchmarkAblationBitset(b *testing.B) {
	const n, l = 2000, 1000
	w := bench.Workload{SNPs: l, Genomes: 30000, Scale: 0.0667}
	cohort, err := bench.Cohort(w)
	if err != nil {
		b.Fatal(err)
	}
	m := cohort.Case
	bytes := make([][]byte, m.N())
	for i := range bytes {
		bytes[i] = make([]byte, m.L())
		for j := 0; j < m.L(); j++ {
			if m.Get(i, j) {
				bytes[i][j] = 1
			}
		}
	}
	_ = n
	b.Run("Bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.AlleleCounts()
		}
	})
	b.Run("BytePerGenotype", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			counts := make([]int64, m.L())
			for _, row := range bytes {
				for j, v := range row {
					counts[j] += int64(v)
				}
			}
		}
	})
}
