module gendpr

go 1.22
